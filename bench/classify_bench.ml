(* The classifier bench behind `dune exec bench/main.exe -- classify`:
   generates seeded rulesets at several sizes, builds all three
   classifiers over each, and gates three properties into
   BENCH_classify.json:

   - agreement (hard gate): on every corpus header, the tuple-space
     and computed classifiers return exactly the rule the priority
     linear scan returns;
   - speedup (hard gate): at the largest size, the computed index's
     wall-clock lookups/sec beats the linear scan's by at least 5x —
     the NuevoMatchUP-direction claim this subsystem models;
   - determinism (hard gate): the corpus digest — matched rule ids and
     modeled cycle costs, folded in size order — at -j N must be
     byte-identical to -j 1.

   The headline metric is wall-clock lookups/sec per algorithm per
   ruleset size; the modeled cycle costs (what the profiler feeds the
   placer, see docs/CLASSIFIER.md) land in the JSON next to them. *)

open Lemur_classifier
module Pool = Lemur_util.Pool
module Json = Lemur_telemetry.Json

type algo_result = {
  a_algo : Classifier.algo;
  a_lookups : int;
  a_wall : float;  (* seconds, wall clock over [a_lookups] lookups *)
  a_mean_cycles : float;  (* modeled, over the corpus *)
  a_worst_cycles : float;  (* modeled, over the corpus *)
  a_structure : string;
}

type size_result = {
  s_size : int;
  s_build_wall : float array;  (* per algo, [Classifier.all_algos] order *)
  s_algos : algo_result list;
  s_mismatches : int;  (* corpus headers where any algo disagrees *)
  s_digest_line : string;
}

(* Walk the corpus with the silent [Classifier.cost] so the timed loop
   measures lookups, not atomic counter traffic. Returns wall seconds;
   the fold result is kept live so the loop cannot be dead-code
   eliminated. *)
let time_lookups cls corpus ~passes =
  let t0 = Unix.gettimeofday () in
  let acc = ref 0.0 in
  for _ = 1 to passes do
    Array.iter
      (fun h -> acc := !acc +. (Classifier.cost cls h).Classifier.o_cycles)
      corpus
  done;
  let wall = Unix.gettimeofday () -. t0 in
  ignore (Sys.opaque_identity !acc);
  (wall, passes * Array.length corpus)

let run_size ~quick size =
  let rs = Ruleset.generate ~size () in
  let corpus = Ruleset.headers rs ~flows:(if quick then 256 else 2048) in
  let built =
    List.map
      (fun algo ->
        let t0 = Unix.gettimeofday () in
        let cls = Classifier.build algo rs in
        (algo, cls, Unix.gettimeofday () -. t0))
      Classifier.all_algos
  in
  (* Agreement + digest in one deterministic pass: matched ids and
     modeled cycles only, never wall-clock. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (string_of_int size);
  let mismatches = ref 0 in
  Array.iter
    (fun h ->
      let ids =
        List.map
          (fun (_, cls, _) ->
            let o = Classifier.cost cls h in
            ( (match o.Classifier.o_rule with
              | Some r -> r.Rule.id
              | None -> -1),
              int_of_float o.Classifier.o_cycles ))
          built
      in
      (match ids with
      | (lin_id, _) :: rest ->
          if List.exists (fun (id, _) -> id <> lin_id) rest then
            incr mismatches
      | [] -> ());
      List.iter
        (fun (id, cy) -> Buffer.add_string buf (Printf.sprintf "|%d:%d" id cy))
        ids)
    corpus;
  (* Lookups/sec: enough passes over the corpus that even the computed
     index accumulates measurable wall time. *)
  let passes algo =
    match algo with
    | Classifier.Linear_scan -> if quick then 1 else max 1 (200_000 / size)
    | Classifier.Tuple_space | Classifier.Computed -> if quick then 8 else 40
  in
  let algos =
    List.map
      (fun (algo, cls, _) ->
        let wall, lookups = time_lookups cls corpus ~passes:(passes algo) in
        {
          a_algo = algo;
          a_lookups = lookups;
          a_wall = wall;
          a_mean_cycles = Classifier.mean_cycles cls corpus;
          a_worst_cycles = Classifier.worst_cycles cls corpus;
          a_structure = Classifier.describe cls;
        })
      built
  in
  {
    s_size = size;
    s_build_wall = Array.of_list (List.map (fun (_, _, w) -> w) built);
    s_algos = algos;
    s_mismatches = !mismatches;
    s_digest_line = Buffer.contents buf;
  }

let run_corpus ~quick ~jobs sizes =
  let results = Pool.map ~domains:jobs (run_size ~quick) sizes in
  let crashes = ref [] in
  let runs =
    List.concat_map
      (fun r ->
        match r with
        | Ok run -> [ run ]
        | Error (e : Pool.job_error) ->
            crashes := e.Pool.message :: !crashes;
            [])
      results
  in
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat "\n" (List.map (fun r -> r.s_digest_line) runs)))
  in
  (runs, digest, List.rev !crashes)

let rate a = if a.a_wall > 0.0 then float_of_int a.a_lookups /. a.a_wall else 0.0

let algo_json a =
  Json.Obj
    [
      ("algo", Json.String (Classifier.algo_name a.a_algo));
      ("lookups", Json.Int a.a_lookups);
      ("wall_s", Json.Float a.a_wall);
      ("lookups_per_sec", Json.Float (rate a));
      ("mean_cycles", Json.Float a.a_mean_cycles);
      ("worst_cycles", Json.Float a.a_worst_cycles);
      ("structure", Json.String a.a_structure);
    ]

let size_json s =
  Json.Obj
    [
      ("rules", Json.Int s.s_size);
      ("mismatches", Json.Int s.s_mismatches);
      ( "build_wall_s",
        Json.List
          (List.map (fun w -> Json.Float w) (Array.to_list s.s_build_wall)) );
      ("algos", Json.List (List.map algo_json s.s_algos));
    ]

let find_rate s algo =
  match List.find_opt (fun a -> a.a_algo = algo) s.s_algos with
  | Some a -> rate a
  | None -> 0.0

let main args =
  let quick = ref false
  and jobs = ref None
  and sizes = ref None
  and out = ref "BENCH_classify.json" in
  let rec parse = function
    | [] -> Ok ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := Some (int_of_string v);
        parse rest
    | "--sizes" :: v :: rest ->
        sizes := Some (List.map int_of_string (String.split_on_char ',' v));
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | arg :: _ -> Error arg
  in
  match parse args with
  | Error arg ->
      Printf.eprintf
        "bench classify: unknown argument %S\n\
         usage: bench -- classify [--quick] [--sizes N,N,..] [-j N] [--out \
         FILE]\n"
        arg;
      2
  | Ok () ->
      let sizes =
        match !sizes with
        | Some s -> s
        | None -> if !quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ]
      in
      let jobs =
        match !jobs with
        | Some j -> max 1 j
        | None -> max 2 (Pool.recommended_domains ())
      in
      Printf.printf
        "## classify: rulesets %s, linear vs tuple-space vs computed, -j 1 \
         vs -j %d (host reports %d domain(s))\n%!"
        (String.concat "/" (List.map string_of_int sizes))
        jobs
        (Pool.recommended_domains ());
      let _seq_runs, seq_digest, seq_crashes =
        run_corpus ~quick:!quick ~jobs:1 sizes
      in
      let par_runs, par_digest, par_crashes =
        run_corpus ~quick:!quick ~jobs sizes
      in
      let crashes = seq_crashes @ par_crashes in
      List.iter (fun m -> Printf.printf "  CRASH: %s\n" m) crashes;
      List.iter
        (fun s ->
          Printf.printf "  %7d rules%s\n" s.s_size
            (if s.s_mismatches = 0 then ""
             else Printf.sprintf "  %d AGREEMENT MISMATCHES" s.s_mismatches);
          List.iter
            (fun a ->
              Printf.printf
                "    %-12s %12.0f lookups/s   mean %8.0f cy   worst %8.0f cy   \
                 %s\n"
                (Classifier.algo_name a.a_algo)
                (rate a) a.a_mean_cycles a.a_worst_cycles a.a_structure)
            s.s_algos)
        par_runs;
      let digests_equal = String.equal seq_digest par_digest in
      let agreement = List.for_all (fun s -> s.s_mismatches = 0) par_runs in
      let top =
        List.fold_left
          (fun acc s ->
            match acc with
            | Some t when t.s_size >= s.s_size -> acc
            | _ -> Some s)
          None par_runs
      in
      let speedup =
        match top with
        | None -> 0.0
        | Some s ->
            let lin = find_rate s Classifier.Linear_scan in
            let nuevo = find_rate s Classifier.Computed in
            if lin > 0.0 then nuevo /. lin else 0.0
      in
      let speedup_ok = speedup >= 5.0 in
      Printf.printf "agreement: %s\n"
        (if agreement then "ok, all three classifiers identical on every header"
         else "MISMATCH");
      Printf.printf "speedup: computed %.1fx linear at %d rules (gate: >= 5x) \
                     %s\n"
        speedup
        (match top with Some s -> s.s_size | None -> 0)
        (if speedup_ok then "ok" else "FAILED");
      Printf.printf "determinism: %s\n"
        (if digests_equal then
           Printf.sprintf "ok, digest %s identical at -j 1 and -j %d"
             par_digest jobs
         else
           Printf.sprintf "DIGEST MISMATCH (-j 1: %s, -j %d: %s)" seq_digest
             jobs par_digest);
      let doc =
        Json.Obj
          [
            ("schema", Json.String "lemur.bench.classify/1");
            ("quick", Json.Bool !quick);
            ("jobs", Json.Int jobs);
            ("host_domains", Json.Int (Pool.recommended_domains ()));
            ("sizes", Json.List (List.map (fun s -> Json.Int s) sizes));
            ("runs", Json.List (List.map size_json par_runs));
            ( "speedup_computed_vs_linear_at_top",
              Json.Float speedup );
            ("speedup_ok", Json.Bool speedup_ok);
            ("agreement", Json.Bool agreement);
            ("digest", Json.String par_digest);
            ("digests_equal", Json.Bool digests_equal);
            ("crashes", Json.List (List.map (fun m -> Json.String m) crashes));
          ]
      in
      let oc = open_out !out in
      output_string oc (Json.to_string doc);
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s\n" !out;
      if
        agreement && speedup_ok && digests_equal && crashes = []
        && par_runs <> []
      then 0
      else 1
