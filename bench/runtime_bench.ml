(* The runtime-control-loop bench behind `dune exec bench/main.exe -- runtime`:
   drives generated traces through the engine under each policy (oracle
   on), writes BENCH_runtime.json, and gates the policy tradeoffs the
   runtime exists to provide:

   - determinism: two identical immediate-policy runs must produce the
     same report digest;
   - every intermediate deployment must pass the placement oracle (the
     engine errors out otherwise);
   - debouncing must pay for itself: >= 2x fewer reconfigurations than
     the immediate policy, for a bounded violation-seconds premium;
   - forecasting must pay for itself: over a diurnal + flash-crowd
     corpus, the proactive policy accrues no more violation-seconds
     than debounced while issuing at most half of immediate's
     reconfigurations;
   - the move budget must hold: every non-exempt reconfiguration in a
     budgeted run re-homes at most [budget] chains, the capped path is
     actually exercised, and the whole budgeted corpus is
     digest-deterministic at any [-j].

   Reconfiguration and violation counts are deterministic given the
   seeds; decision-latency numbers are wall clock and reported for
   trending only. [--quick] shrinks every corpus for CI smoke. *)

module Trace = Lemur_runtime.Trace
module Engine = Lemur_runtime.Engine
module Policy = Lemur_runtime.Policy
module Report = Lemur_runtime.Report
module Json = Lemur_telemetry.Json

let default_seed = 11
let default_events = 200

(* The debounced policy may spend at most this many extra chain-seconds
   in violation compared to immediate, per chain-second immediate spends
   plus an absolute floor — "bounded" from the acceptance criteria made
   concrete. *)
let violation_premium_abs = 0.10
let violation_premium_rel = 1.5

let latency_stats latencies =
  match latencies with
  | [] -> (0.0, 0.0, 0.0)
  | l ->
      let sorted = List.sort Float.compare l in
      let n = List.length sorted in
      let mean = List.fold_left ( +. ) 0.0 sorted /. float_of_int n in
      let nth p = List.nth sorted (min (n - 1) (p * n / 100)) in
      (mean, nth 50, nth 99)

let policy_json name (r : Report.t) digest =
  let mean, p50, p99 = latency_stats r.Report.decision_latency_s in
  Json.Obj
    [
      ("policy", Json.String name);
      ("reconfigs", Json.Int r.Report.reconfigs);
      ("events_applied", Json.Int r.Report.events_applied);
      ("events_rejected", Json.Int r.Report.events_rejected);
      ("epochs", Json.Int r.Report.epochs);
      ("violation_s", Json.Float r.Report.total_violation_s);
      ("marginal_bits", Json.Float r.Report.total_marginal_bits);
      ("decision_latency_mean_s", Json.Float mean);
      ("decision_latency_p50_s", Json.Float p50);
      ("decision_latency_p99_s", Json.Float p99);
      ("digest", Json.String digest);
      ( "stop",
        Json.String
          (match r.Report.stop with
          | Report.Completed -> "completed"
          | Report.Aborted _ -> "aborted") );
    ]

(* ------------------------------------------------------------------ *)
(* Proactive corpus: the forecasting story. Diurnal ramps and flash
   crowds, each driven under immediate / debounced / proactive; gates
   are on corpus sums. *)

let corpus_specs ~quick =
  let diurnal = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let flash = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  List.map (fun s -> (Trace.Diurnal, s, 40)) diurnal
  @ List.map (fun s -> (Trace.Flash_crowd, s, 50)) flash

let corpus_policies =
  [
    ("immediate", Policy.Immediate);
    ("debounced", Policy.default_debounced);
    ("proactive", Policy.default_proactive);
  ]

type corpus_row = {
  cr_kind : Trace.kind;
  cr_seed : int;
  cr_results : (string * Report.t) list;  (* in corpus_policies order *)
}

let run_corpus ~quick ~drive_trace =
  let rows =
    List.map
      (fun (kind, seed, events) ->
        let trace = Trace.generate ~events ~kind ~seed () in
        let results =
          List.map
            (fun (name, p) ->
              match drive_trace ?move_budget:None ~seed p trace with
              | Ok r -> (name, r)
              | Error e ->
                  failwith
                    (Printf.sprintf "%s seed %d under %s: %s"
                       (Trace.kind_to_string kind) seed name e))
            corpus_policies
        in
        { cr_kind = kind; cr_seed = seed; cr_results = results })
      (corpus_specs ~quick)
  in
  let total name f =
    List.fold_left (fun acc row -> acc +. f (List.assoc name row.cr_results)) 0.0 rows
  in
  let total_i name f =
    List.fold_left (fun acc row -> acc + f (List.assoc name row.cr_results)) 0 rows
  in
  let viol name = total name (fun r -> r.Report.total_violation_s) in
  let reconfigs name = total_i name (fun r -> r.Report.reconfigs) in
  let proactive_viol = viol "proactive"
  and debounced_viol = viol "debounced"
  and proactive_rc = reconfigs "proactive"
  and immediate_rc = reconfigs "immediate" in
  let viol_ok = proactive_viol <= debounced_viol in
  let rc_ok = 2 * proactive_rc <= immediate_rc in
  let table =
    Lemur_util.Texttable.create
      ~headers:
        [
          "trace"; "immediate rc/viol"; "debounced rc/viol";
          "proactive rc/viol";
        ]
  in
  List.iter
    (fun row ->
      let cell name =
        let r = List.assoc name row.cr_results in
        Printf.sprintf "%d / %.4f" r.Report.reconfigs
          r.Report.total_violation_s
      in
      Lemur_util.Texttable.add_row table
        [
          Printf.sprintf "%s:%d" (Trace.kind_to_string row.cr_kind) row.cr_seed;
          cell "immediate"; cell "debounced"; cell "proactive";
        ])
    rows;
  Lemur_util.Texttable.print table;
  Printf.printf
    "proactive corpus: violation %.4f vs debounced %.4f chain-s (%s); \
     reconfigs %d vs immediate %d (%s)\n"
    proactive_viol debounced_viol
    (if viol_ok then "ok, <=" else "FAILED: >")
    proactive_rc immediate_rc
    (if rc_ok then "ok, <=50%" else "FAILED: >50%");
  let json =
    Json.Obj
      [
        ( "traces",
          Json.List
            (List.map
               (fun row ->
                 Json.Obj
                   [
                     ("kind", Json.String (Trace.kind_to_string row.cr_kind));
                     ("seed", Json.Int row.cr_seed);
                     ( "policies",
                       Json.List
                         (List.map
                            (fun (name, r) ->
                              policy_json name r (Report.digest r))
                            row.cr_results) );
                   ])
               rows) );
        ("proactive_violation_s", Json.Float proactive_viol);
        ("debounced_violation_s", Json.Float debounced_viol);
        ("proactive_reconfigs", Json.Int proactive_rc);
        ("immediate_reconfigs", Json.Int immediate_rc);
        ("violation_ok", Json.Bool viol_ok);
        ("reconfig_ratio_ok", Json.Bool rc_ok);
      ]
  in
  (viol_ok && rc_ok, json)

(* ------------------------------------------------------------------ *)
(* Move-budget corpus: traces whose re-placements re-home chains,
   driven under a budget. Gates: every non-exempt Reconfigured entry
   respects the budget, the capped path fires at least once across the
   corpus, and the digests are identical whether the corpus is
   evaluated on 1 domain or [jobs]. *)

let budget_specs ~quick =
  let specs =
    [
      (Trace.Failure_burst, 2, 50, 0);
      (Trace.Failure_burst, 7, 50, 0);
      (Trace.Churn, 5, 50, 0);
      (Trace.Failure_burst, 2, 50, 1);
    ]
  in
  if quick then [ List.hd specs; List.nth specs 3 ] else specs

let run_budget ~quick ~jobs ~drive_trace =
  let specs = budget_specs ~quick in
  let eval (kind, seed, events, budget) =
    let trace = Trace.generate ~events ~kind ~seed () in
    match
      drive_trace ?move_budget:(Some budget) ~seed Policy.Immediate trace
    with
    | Ok r -> r
    | Error e ->
        failwith
          (Printf.sprintf "budgeted %s seed %d: %s"
             (Trace.kind_to_string kind) seed e)
  in
  let run_pool ~domains =
    let results = Lemur_util.Pool.map ~domains eval specs in
    List.map
      (function
        | Ok r -> r
        | Error (e : Lemur_util.Pool.job_error) -> failwith e.Lemur_util.Pool.message)
      results
  in
  let serial = run_pool ~domains:1 in
  let parallel = run_pool ~domains:(max 1 jobs) in
  let digests rs = List.map Report.digest rs in
  let digests_equal = digests serial = digests parallel in
  let cap_respected =
    List.for_all2
      (fun (_, _, _, budget) (r : Report.t) ->
        List.for_all
          (function
            | Report.Reconfigured { moves; exempt = false; _ } ->
                moves <= budget
            | _ -> true)
          r.Report.journal)
      specs serial
  in
  let capped_total =
    List.fold_left (fun acc (r : Report.t) -> acc + r.Report.moves_capped) 0 serial
  in
  let capped_fired = capped_total > 0 in
  List.iter2
    (fun (kind, seed, _, budget) (r : Report.t) ->
      Printf.printf
        "move budget %d on %s:%d: %d reconfigs, %d chains moved, %d capped\n"
        budget (Trace.kind_to_string kind) seed r.Report.reconfigs
        r.Report.moves_total r.Report.moves_capped)
    specs serial;
  Printf.printf
    "move budget: cap %s, capped path %s (%d capped), -j1 vs -j%d digests %s\n"
    (if cap_respected then "respected" else "VIOLATED")
    (if capped_fired then "exercised" else "NEVER FIRED")
    capped_total (max 1 jobs)
    (if digests_equal then "identical" else "MISMATCH");
  let json =
    Json.Obj
      [
        ( "runs",
          Json.List
            (List.map2
               (fun (kind, seed, events, budget) (r : Report.t) ->
                 Json.Obj
                   [
                     ("kind", Json.String (Trace.kind_to_string kind));
                     ("seed", Json.Int seed);
                     ("events", Json.Int events);
                     ("budget", Json.Int budget);
                     ("reconfigs", Json.Int r.Report.reconfigs);
                     ("moves_total", Json.Int r.Report.moves_total);
                     ("moves_capped", Json.Int r.Report.moves_capped);
                     ("digest", Json.String (Report.digest r));
                   ])
               specs serial) );
        ("cap_respected", Json.Bool cap_respected);
        ("capped_fired", Json.Bool capped_fired);
        ("jobs", Json.Int (max 1 jobs));
        ("digests_equal", Json.Bool digests_equal);
      ]
  in
  (cap_respected && capped_fired && digests_equal, json)

(* ------------------------------------------------------------------ *)

let main args =
  let seed = ref default_seed
  and events = ref default_events
  and quick = ref false
  and jobs = ref 2
  and out = ref "BENCH_runtime.json" in
  let rec parse = function
    | [] -> Ok ()
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--events" :: v :: rest ->
        events := int_of_string v;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "-j" :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | arg :: _ -> Error arg
  in
  match parse args with
  | Error arg ->
      Printf.eprintf
        "bench runtime: unknown argument %S\n\
         usage: bench -- runtime [--seed N] [--events N] [--quick] [-j N] \
         [--out FILE]\n"
        arg;
      2
  | Ok () -> (
      if !quick && !events = default_events then events := 60;
      let trace = Trace.generate ~events:!events ~seed:!seed () in
      Printf.printf
        "## runtime: control-loop policies on trace seed %d (%d events, %d \
         chains, %.3fs horizon)\n"
        !seed !events
        (List.length trace.Trace.chains)
        trace.Trace.horizon;
      let drive_trace ?move_budget ~seed policy trace =
        let cfg =
          Engine.default_config ~policy ~seed
            ~check:Lemur_check.Runtime_check.checker ?move_budget ()
        in
        match Engine.run cfg trace with
        | Ok (report, _) -> Ok report
        | Error e -> Error (Engine.error_to_string e)
      in
      let drive policy = drive_trace ~seed:!seed policy trace in
      let run_all =
        let policies =
          [
            ("immediate", Policy.Immediate);
            ("debounced", Policy.default_debounced);
            ("scheduled", Policy.Scheduled);
          ]
        in
        List.fold_left
          (fun acc (name, p) ->
            Result.bind acc (fun rs ->
                match drive p with
                | Ok r -> Ok (rs @ [ (name, r) ])
                | Error e -> Error (name ^ ": " ^ e)))
          (Ok []) policies
      in
      (* Incremental re-placement vs from-scratch: a dedicated
         demand-churn trace — longer chains than the policy trace, so a
         re-solve actually has pattern search and coalescing to redo —
         driven twice under the immediate policy (oracle on), caches
         dropped before each run so neither inherits warmth. The
         incremental engine keeps the structural memo and variant cache
         across re-placements (demand events leave every chain clean,
         so the whole pattern search replays from cache); the
         from-scratch one clears them inside every timed decision.
         Placements — and therefore report digests — must be
         byte-identical: the caches only change how fast the same
         answer is derived. *)
      let resolve_trace =
        let topo =
          {
            Trace.servers = 3;
            cores_per_socket = 8;
            smartnic = true;
            ofswitch = false;
            no_pisa = false;
            metron = false;
          }
        in
        let chains =
          [
            "r0 slo(tmin='2.0Gbps', tmax='40Gbps') = ACL -> Monitor -> NAT \
             -> Encrypt -> Tunnel -> IPv4Fwd";
            "r1 slo(tmin='1.5Gbps', tmax='40Gbps') = BPF -> ACL -> Monitor \
             -> NAT -> Tunnel -> IPv4Fwd";
            "r2 slo(tmin='1.0Gbps', tmax='40Gbps') = Monitor -> ACL -> NAT \
             -> Encrypt -> IPv4Fwd";
          ]
        in
        let prng = Lemur_util.Prng.create ~seed:!seed in
        let t = ref 0.0 in
        let n = if !quick then 40 else 120 in
        let events =
          List.init n (fun i ->
              t := !t +. 0.005;
              let chain_id = Printf.sprintf "r%d" (i mod 3) in
              let rate =
                float_of_int (5 + Lemur_util.Prng.int prng 200) *. 1e8
              in
              { Trace.at = !t; action = Trace.Traffic { chain_id; rate } })
        in
        {
          Trace.seed = None;
          topo;
          chains;
          windows = [];
          events;
          horizon = !t +. 0.01;
        }
      in
      let drive_incremental ~incremental =
        Lemur_placer.Memo.clear ();
        Lemur_placer.Strategy.clear_variant_cache ();
        let cfg =
          Engine.default_config ~policy:Policy.Immediate ~seed:!seed
            ~check:Lemur_check.Runtime_check.checker ~incremental ()
        in
        match Engine.run cfg resolve_trace with
        | Ok (report, _) -> Ok report
        | Error e -> Error (Engine.error_to_string e)
      in
      match run_all with
      | Error e ->
          Printf.eprintf "bench runtime: %s\n" e;
          1
      | Ok results ->
          let digest name = Report.digest (List.assoc name results) in
          (* determinism gate: replay immediate and compare digests *)
          let replay_digest =
            match drive Policy.Immediate with
            | Ok r -> Report.digest r
            | Error e -> e
          in
          let table =
            Lemur_util.Texttable.create
              ~headers:
                [
                  "policy"; "reconfigs"; "violation (chain-s)";
                  "marginal (Gbit)"; "decision mean (ms)";
                ]
          in
          List.iter
            (fun (name, (r : Report.t)) ->
              let mean, _, _ = latency_stats r.Report.decision_latency_s in
              Lemur_util.Texttable.add_row table
                [
                  name;
                  string_of_int r.Report.reconfigs;
                  Printf.sprintf "%.4f" r.Report.total_violation_s;
                  Printf.sprintf "%.2f" (r.Report.total_marginal_bits /. 1e9);
                  Printf.sprintf "%.2f" (mean *. 1000.0);
                ])
            results;
          Lemur_util.Texttable.print table;
          let imm = List.assoc "immediate" results in
          let deb = List.assoc "debounced" results in
          let deterministic = String.equal (digest "immediate") replay_digest in
          let incremental_section =
            match
              (drive_incremental ~incremental:true,
               drive_incremental ~incremental:false)
            with
            | Error e, _ | _, Error e -> Error e
            | Ok inc, Ok scratch ->
                let inc_mean, _, _ =
                  latency_stats inc.Report.decision_latency_s
                in
                let scratch_mean, _, _ =
                  latency_stats scratch.Report.decision_latency_s
                in
                let resolve_speedup =
                  if inc_mean > 0.0 then scratch_mean /. inc_mean else 0.0
                in
                let digests_equal =
                  String.equal (Report.digest inc) (Report.digest scratch)
                in
                Printf.printf
                  "incremental re-placement: mean decision %.2f ms vs %.2f \
                   ms from scratch (%.2fx), digests %s\n"
                  (inc_mean *. 1000.0) (scratch_mean *. 1000.0)
                  resolve_speedup
                  (if digests_equal then "identical" else "MISMATCH");
                Ok
                  ( digests_equal,
                    Json.Obj
                      [
                        ("reconfigs", Json.Int inc.Report.reconfigs);
                        ( "incremental_decision_mean_s",
                          Json.Float inc_mean );
                        ( "scratch_decision_mean_s",
                          Json.Float scratch_mean );
                        ("resolve_speedup", Json.Float resolve_speedup);
                        ("digests_equal", Json.Bool digests_equal);
                        ( "incremental_digest",
                          Json.String (Report.digest inc) );
                      ] )
          in
          let ratio_ok =
            deb.Report.reconfigs * 2 <= imm.Report.reconfigs
          in
          let budget =
            violation_premium_abs
            +. (violation_premium_rel *. imm.Report.total_violation_s)
          in
          let premium_ok = deb.Report.total_violation_s <= budget in
          Printf.printf
            "determinism: %s\nreconfig ratio: %d vs %d (%s)\n\
             violation premium: %.4f vs budget %.4f chain-s (%s)\n"
            (if deterministic then "ok" else "DIGEST MISMATCH")
            imm.Report.reconfigs deb.Report.reconfigs
            (if ratio_ok then "ok, >=2x fewer" else "FAILED: < 2x")
            deb.Report.total_violation_s budget
            (if premium_ok then "ok" else "FAILED");
          let incremental_ok, incremental_json =
            match incremental_section with
            | Ok (equal, json) -> (equal, json)
            | Error e ->
                ( false,
                  Json.Obj [ ("error", Json.String e) ] )
          in
          let proactive_ok, proactive_json =
            run_corpus ~quick:!quick ~drive_trace
          in
          let budget_ok, budget_json =
            run_budget ~quick:!quick ~jobs:!jobs ~drive_trace
          in
          let doc =
            Json.Obj
              [
                ("schema", Json.String "lemur.bench.runtime/2");
                ("trace_seed", Json.Int !seed);
                ("trace_events", Json.Int !events);
                ("quick", Json.Bool !quick);
                ("horizon_s", Json.Float trace.Trace.horizon);
                ( "policies",
                  Json.List
                    (List.map
                       (fun (name, r) -> policy_json name r (digest name))
                       results) );
                ("deterministic", Json.Bool deterministic);
                ("reconfig_ratio_ok", Json.Bool ratio_ok);
                ("violation_premium_ok", Json.Bool premium_ok);
                ("incremental", incremental_json);
                ("proactive_corpus", proactive_json);
                ("move_budget", budget_json);
              ]
          in
          let oc = open_out !out in
          output_string oc (Json.to_string doc);
          output_string oc "\n";
          close_out oc;
          Printf.printf "wrote %s\n" !out;
          if
            deterministic && ratio_ok && premium_ok && incremental_ok
            && proactive_ok && budget_ok
          then 0
          else 1)
