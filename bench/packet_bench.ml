(* The packet-engine bench behind `dune exec bench/main.exe -- packets`:
   generates a seeded scenario corpus, places each with the Lemur
   heuristic, executes every accepted placement packet-by-packet on
   Lemur_dataplane.Engine, and gates three properties into
   BENCH_packets.json:

   - convergence (hard gate): every engine run must agree with the
     batch-rate simulator on the same placement at the same offered
     rates, within the Lemur_check.Convergence tolerances documented
     in docs/DATAPLANE.md;
   - conservation (hard gate): injected = delivered + dropped +
     in-flight on every chain of every run;
   - determinism (hard gate): the corpus digest — per-chain packet
     counters and delivered rates, folded in seed order — at -j N must
     be byte-identical to -j 1.

   The headline metric is packet-hops served per host wall-clock
   second (a packet crossing one element is one hop), plus plain
   packets per second at ingress; both land in the JSON either way. *)

module Strategy = Lemur_placer.Strategy
module Plan = Lemur_placer.Plan
module Scenario = Lemur_check.Scenario
module Convergence = Lemur_check.Convergence
module Engine = Lemur_dataplane.Engine
module Sim = Lemur_dataplane.Sim
module Pool = Lemur_util.Pool
module Units = Lemur_util.Units
module Json = Lemur_telemetry.Json

type run = {
  r_seed : int;
  r_chains : int;
  r_offered : float;  (* bit/s, summed over chains *)
  r_delivered : float;
  r_injected : int;
  r_hops : int;
  r_wall : float;
  r_conserved : bool;
  r_divergences : string list;
  r_digest_line : string;
}

(* One corpus seed: generate, place, execute both ways, compare. An
   infeasible scenario contributes nothing (None) — which seeds those
   are is deterministic, so the corpus is still identical at any -j. *)
let run_seed ~quick seed =
  let scenario = Scenario.generate ~quick:true ~seed () in
  let cfg = Scenario.config scenario in
  let inputs = Scenario.inputs scenario in
  match Strategy.place Strategy.Lemur cfg inputs with
  | Strategy.Infeasible _ -> None
  | Strategy.Placed p ->
      let er =
        Engine.run ~seed:(seed + 13)
          ~duration:(Units.ms (if quick then 5.0 else 10.0))
          ~overdrive:1.0 ~config:cfg ~placement:p ()
      in
      let sr =
        Sim.run ~seed:(seed + 13)
          ~duration:(Units.ms (if quick then 10.0 else 20.0))
          ~overdrive:1.0 ~config:cfg ~placement:p ()
      in
      let verdict =
        Convergence.check ~pkt_bytes:cfg.Plan.pkt_bytes ~engine:er ~sim:sr ()
      in
      (* Exactly the deterministic outcomes: virtual-time counters and
         measured rates, never wall-clock. This is what the -j 1 vs
         -j N byte-identity gate hashes. *)
      let buf = Buffer.create 256 in
      Buffer.add_string buf (string_of_int seed);
      List.iter
        (fun (c : Engine.chain_result) ->
          Buffer.add_string buf
            (Printf.sprintf "|%s=%.17g:%d/%d/%d/%d/%d" c.Engine.chain_id
               c.Engine.delivered c.Engine.injected_pkts
               c.Engine.delivered_pkts c.Engine.dropped_pkts
               c.Engine.shaped_pkts c.Engine.in_flight_pkts))
        er.Engine.chains;
      Buffer.add_string buf
        (Printf.sprintf "|conv%b" (Convergence.ok verdict));
      Some
        {
          r_seed = seed;
          r_chains = List.length er.Engine.chains;
          r_offered =
            List.fold_left
              (fun a (c : Engine.chain_result) -> a +. c.Engine.offered)
              0.0 er.Engine.chains;
          r_delivered = er.Engine.aggregate_throughput;
          r_injected =
            List.fold_left
              (fun a (c : Engine.chain_result) -> a + c.Engine.injected_pkts)
              0 er.Engine.chains;
          r_hops = er.Engine.total_served;
          r_wall = er.Engine.wall_s;
          r_conserved = Engine.conserved er;
          r_divergences =
            List.map
              (Format.asprintf "%a" Convergence.pp_divergence)
              verdict.Convergence.divergences;
          r_digest_line = Buffer.contents buf;
        }

let run_corpus ~quick ~jobs seeds =
  let results = Pool.map ~domains:jobs (run_seed ~quick) seeds in
  let crashes = ref [] in
  let runs =
    List.concat_map
      (fun r ->
        match r with
        | Ok (Some run) -> [ run ]
        | Ok None -> []
        | Error (e : Pool.job_error) ->
            crashes := e.Pool.message :: !crashes;
            [])
      results
  in
  let digest =
    Digest.to_hex
      (Digest.string (String.concat "\n" (List.map (fun r -> r.r_digest_line) runs)))
  in
  (runs, digest, List.rev !crashes)

let run_json r =
  Json.Obj
    [
      ("seed", Json.Int r.r_seed);
      ("chains", Json.Int r.r_chains);
      ("offered_gbps", Json.Float (r.r_offered /. 1e9));
      ("delivered_gbps", Json.Float (r.r_delivered /. 1e9));
      ("injected_pkts", Json.Int r.r_injected);
      ("packet_hops", Json.Int r.r_hops);
      ("wall_s", Json.Float r.r_wall);
      ( "hops_per_sec",
        Json.Float
          (if r.r_wall > 0.0 then float_of_int r.r_hops /. r.r_wall else 0.0)
      );
      ("conserved", Json.Bool r.r_conserved);
      ("converged", Json.Bool (r.r_divergences = []));
    ]

let main args =
  let seed = ref 1
  and count = ref None
  and jobs = ref None
  and quick = ref false
  and out = ref "BENCH_packets.json" in
  let rec parse = function
    | [] -> Ok ()
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--count" :: v :: rest ->
        count := Some (int_of_string v);
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := Some (int_of_string v);
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | arg :: _ -> Error arg
  in
  match parse args with
  | Error arg ->
      Printf.eprintf
        "bench packets: unknown argument %S\n\
         usage: bench -- packets [--quick] [--seed N] [--count N] [-j N] \
         [--out FILE]\n"
        arg;
      2
  | Ok () ->
      let count =
        match !count with Some c -> c | None -> if !quick then 8 else 24
      in
      let jobs =
        match !jobs with
        | Some j -> max 1 j
        | None -> max 2 (Pool.recommended_domains ())
      in
      let seeds = List.init count (fun i -> !seed + i) in
      Printf.printf
        "## packets: %d scenario seed(s) from %d, engine vs sim at overdrive \
         1.0, -j 1 vs -j %d (host reports %d domain(s))\n%!"
        count !seed jobs
        (Pool.recommended_domains ());
      let _seq_runs, seq_digest, seq_crashes =
        run_corpus ~quick:!quick ~jobs:1 seeds
      in
      let par_runs, par_digest, par_crashes =
        run_corpus ~quick:!quick ~jobs seeds
      in
      let crashes = seq_crashes @ par_crashes in
      List.iter (fun m -> Printf.printf "  CRASH: %s\n" m) crashes;
      let wall = List.fold_left (fun a r -> a +. r.r_wall) 0.0 par_runs in
      let hops = List.fold_left (fun a r -> a + r.r_hops) 0 par_runs in
      let injected =
        List.fold_left (fun a r -> a + r.r_injected) 0 par_runs
      in
      List.iter
        (fun r ->
          Printf.printf
            "  seed %3d: %d chain(s), offered %6.2f Gbps, delivered %6.2f \
             Gbps, %7d hops in %.3fs%s%s\n"
            r.r_seed r.r_chains (r.r_offered /. 1e9) (r.r_delivered /. 1e9)
            r.r_hops r.r_wall
            (if r.r_conserved then "" else "  CONSERVATION VIOLATED")
            (if r.r_divergences = [] then "" else "  DIVERGED");
          List.iter
            (fun d -> Printf.printf "      divergence: %s\n" d)
            r.r_divergences)
        par_runs;
      let digests_equal = String.equal seq_digest par_digest in
      let all_converged =
        List.for_all (fun r -> r.r_divergences = []) par_runs
      in
      let all_conserved = List.for_all (fun r -> r.r_conserved) par_runs in
      Printf.printf "placed %d of %d scenario(s)\n" (List.length par_runs)
        count;
      Printf.printf "packet-hops/sec: %.0f (%d hops, %d packets, %.2fs engine \
                     wall)\n"
        (if wall > 0.0 then float_of_int hops /. wall else 0.0)
        hops injected wall;
      Printf.printf "determinism: %s\n"
        (if digests_equal then
           Printf.sprintf "ok, digest %s identical at -j 1 and -j %d"
             par_digest jobs
         else
           Printf.sprintf "DIGEST MISMATCH (-j 1: %s, -j %d: %s)" seq_digest
             jobs par_digest);
      Printf.printf "convergence: %s\n"
        (if all_converged then "ok, every run within tolerance"
         else "DIVERGED from the rate model");
      Printf.printf "conservation: %s\n"
        (if all_conserved then "ok" else "VIOLATED");
      let doc =
        Json.Obj
          [
            ("schema", Json.String "lemur.bench.packets/1");
            ("seed", Json.Int !seed);
            ("count", Json.Int count);
            ("placed", Json.Int (List.length par_runs));
            ("jobs", Json.Int jobs);
            ("host_domains", Json.Int (Pool.recommended_domains ()));
            ("quick", Json.Bool !quick);
            ("runs", Json.List (List.map run_json par_runs));
            ("packet_hops", Json.Int hops);
            ("injected_pkts", Json.Int injected);
            ("engine_wall_s", Json.Float wall);
            ( "hops_per_sec",
              Json.Float
                (if wall > 0.0 then float_of_int hops /. wall else 0.0) );
            ( "packets_per_sec",
              Json.Float
                (if wall > 0.0 then float_of_int injected /. wall else 0.0) );
            ("digest", Json.String par_digest);
            ("digests_equal", Json.Bool digests_equal);
            ("converged", Json.Bool all_converged);
            ("conserved", Json.Bool all_conserved);
            ("crashes", Json.List (List.map (fun m -> Json.String m) crashes));
          ]
      in
      let oc = open_out !out in
      output_string oc (Json.to_string doc);
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s\n" !out;
      if
        digests_equal && all_converged && all_conserved && crashes = []
        && par_runs <> []
      then 0
      else 1
