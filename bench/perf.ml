(* The perf harness behind `dune exec bench/main.exe -- perf`: times the
   LP/MILP/strategy/fuzz hot paths over fixed seeds and writes
   BENCH_perf.json — the repo's perf trajectory point for this commit.
   docs/PERFORMANCE.md documents the measurements and how to read them.

   Everything reported as a count (pivots, nodes, cache hits) is
   deterministic given the seeds; wall-clock numbers are not, which is
   why the CI regression gate (--baseline) compares pivot counts only. *)

module Telemetry = Lemur_telemetry.Telemetry
module Counter = Lemur_telemetry.Counter
module Histogram = Lemur_telemetry.Histogram
module Json = Lemur_telemetry.Json
module Simplex = Lemur_lp.Simplex
module Scenario = Lemur_check.Scenario
module Fuzz = Lemur_check.Fuzz
module Prng = Lemur_util.Prng

(* ------------------------------------------------------------------ *)
(* Fixed-seed LP corpus. Identical in --quick and full mode so the
   checked-in pivot baseline is one number. *)

let fixed_instances =
  [
    (* small maximization *)
    ([| 3.0; 2.0 |], [| [| 1.0; 1.0 |]; [| 1.0; 3.0 |] |], [| 4.0; 6.0 |]);
    (* the textbook 2-var, 3-row LP *)
    ( [| 3.0; 5.0 |],
      [| [| 1.0; 0.0 |]; [| 0.0; 2.0 |]; [| 3.0; 2.0 |] |],
      [| 4.0; 12.0; 18.0 |] );
    (* negative rhs: phase 1 with artificials *)
    ( [| 1.0; 1.0 |],
      [| [| -1.0; -1.0 |]; [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |],
      [| -2.0; 3.0; 3.0 |] );
    (* Beale's degenerate cycling example *)
    ( [| 0.75; -150.0; 0.02; -6.0 |],
      [|
        [| 0.25; -60.0; -0.04; 9.0 |];
        [| 0.5; -90.0; -0.02; 3.0 |];
        [| 0.0; 0.0; 1.0; 0.0 |];
      |],
      [| 0.0; 0.0; 1.0 |] );
    (* rate-LP shape: mixed 1e0 coefficients against 1e10 rhs *)
    ( [| 1.0; 1.0 |],
      [| [| 1.0; 1.0 |]; [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |],
      [| 40e9; 25e9; 25e9 |] );
  ]

let random_instances rng ~count ~nmax ~mmax =
  List.init count (fun _ ->
      let n = 2 + Prng.int rng nmax in
      let m = 2 + Prng.int rng mmax in
      let c = Array.init n (fun _ -> Prng.uniform rng ~lo:(-2.0) ~hi:10.0) in
      (* mixed-sign coefficients make polytopes whose optimum is many
         vertices from the slack basis — all-positive dense rows would
         bind after a pivot or two and measure only setup cost *)
      let a =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Prng.uniform rng ~lo:(-5.0) ~hi:10.0))
      in
      (* roughly one row in six gets a negative rhs, forcing phase 1 *)
      let b = Array.init m (fun _ -> Prng.uniform rng ~lo:(-10.0) ~hi:50.0) in
      (* a box row keeps every instance bounded *)
      let box = Array.make n 1.0 in
      (c, Array.append a [| box |], Array.append b [| 100.0 |]))

(* Assignment-relaxation instances (k x k agents/tasks, x_ij in the
   doubly-stochastic polytope): heavily degenerate, like the MILP's
   NF-to-platform assignment rows. Degeneracy is where the pricing rule
   matters most — Bland's lowest-index rule walks long ties that
   Dantzig's steepest reduced cost skips. *)
let assignment_instances rng ~count ~kmax =
  List.init count (fun _ ->
      let k = 3 + Prng.int rng (kmax - 2) in
      let n = k * k in
      let c = Array.init n (fun _ -> Prng.float rng 10.0) in
      let row pick =
        Array.init n (fun v -> if pick v then 1.0 else 0.0)
      in
      let a =
        Array.append
          (Array.init k (fun i -> row (fun v -> v / k = i)))
          (Array.init k (fun j -> row (fun v -> v mod k = j)))
      in
      (c, a, Array.make (2 * k) 1.0))

(* Sizes mirror the placer's real LPs: many small rate-LP-shaped
   problems, the MILP relaxations' larger tableaux (tens of variables
   and rows once the McCormick envelopes are emitted), and degenerate
   assignment polytopes. *)
let corpus =
  let rng = Prng.create ~seed:42 in
  fixed_instances
  @ random_instances rng ~count:20 ~nmax:6 ~mmax:8
  @ random_instances rng ~count:10 ~nmax:40 ~mmax:60
  @ assignment_instances rng ~count:10 ~kmax:9

(* ------------------------------------------------------------------ *)

let now = Unix.gettimeofday

let counter_value tm name = Counter.value (Telemetry.counter tm name)

let simplex_pivot_counters =
  [
    "lp.simplex.phase1_pivots";
    "lp.simplex.phase2_pivots";
    "lp.simplex.warm_install_pivots";
    "lp.simplex.warm_dual_pivots";
    "lp.simplex.warm_phase2_pivots";
  ]

let total_simplex_pivots tm =
  List.fold_left (fun acc n -> acc + counter_value tm n) 0 simplex_pivot_counters

(* Run [f] against a fresh recording registry; restore the disabled
   sink afterwards and hand the registry back for counter reads. *)
let with_registry f =
  let tm = Telemetry.create () in
  Telemetry.set_current tm;
  let finally () = Telemetry.set_current Telemetry.disabled in
  let r = try f () with e -> finally (); raise e in
  finally ();
  (r, tm)

(* Wall-clock ns for one pass over the corpus, averaged over [reps]
   passes with telemetry disabled (so instrumentation cost is not part
   of the measurement). *)
let time_passes ~reps f =
  Telemetry.set_current Telemetry.disabled;
  f () (* warm-up, excluded *);
  let t0 = now () in
  for _ = 1 to reps do
    f ()
  done;
  (now () -. t0) *. 1e9 /. float_of_int reps

type solver_outcome = Opt of float | Infeas | Unbound

let baseline_pass () =
  List.map
    (fun (c, a, b) ->
      match Baseline_simplex.solve ~c ~a ~b with
      | Baseline_simplex.Optimal { objective; _ } -> Opt objective
      | Baseline_simplex.Infeasible -> Infeas
      | Baseline_simplex.Unbounded -> Unbound)
    corpus

let optimized_pass pricing () =
  List.map
    (fun (c, a, b) ->
      match fst (Simplex.solve_basis ~pricing ~c ~a ~b ()) with
      | Simplex.Optimal { objective; _ } -> Opt objective
      | Simplex.Infeasible -> Infeas
      | Simplex.Unbounded -> Unbound)
    corpus

let outcomes_agree xs ys =
  List.for_all2
    (fun x y ->
      match (x, y) with
      | Opt a, Opt b ->
          Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a)
      | Infeas, Infeas | Unbound, Unbound -> true
      | _ -> false)
    xs ys

let bench_simplex ~reps =
  let baseline_outcomes = ref [] in
  Baseline_simplex.pivots := 0;
  baseline_outcomes := baseline_pass ();
  let baseline_pivots = !Baseline_simplex.pivots in
  let bland_outcomes, bland_tm = with_registry (optimized_pass Simplex.Bland) in
  let bland_pivots = total_simplex_pivots bland_tm in
  let dantzig_outcomes, dantzig_tm =
    with_registry (optimized_pass Simplex.Dantzig)
  in
  let dantzig_pivots = total_simplex_pivots dantzig_tm in
  let fallbacks = counter_value dantzig_tm "lp.simplex.bland_fallbacks" in
  let agree =
    outcomes_agree !baseline_outcomes bland_outcomes
    && outcomes_agree !baseline_outcomes dantzig_outcomes
  in
  let t_baseline = time_passes ~reps (fun () -> ignore (baseline_pass ())) in
  let t_bland = time_passes ~reps (fun () -> ignore (optimized_pass Simplex.Bland ())) in
  let t_dantzig =
    time_passes ~reps (fun () -> ignore (optimized_pass Simplex.Dantzig ()))
  in
  let size = List.length corpus in
  let solves_per_sec ns = float_of_int size /. (ns /. 1e9) in
  let hist tm name =
    let h = Telemetry.histogram tm name in
    Json.Obj
      [
        ("count", Json.Int (Histogram.count h));
        ("p50_ns", Json.Float (Histogram.percentile h 50.0));
        ("p99_ns", Json.Float (Histogram.percentile h 99.0));
      ]
  in
  let side name pivots ns =
    ( name,
      Json.Obj
        [
          ("pivots", Json.Int pivots);
          ("wall_ns_per_pass", Json.Float ns);
          ("solves_per_sec", Json.Float (solves_per_sec ns));
        ] )
  in
  let json =
    Json.Obj
      [
        ("corpus_size", Json.Int size);
        ("outcomes_agree", Json.Bool agree);
        side "baseline" baseline_pivots t_baseline;
        side "bland" bland_pivots t_bland;
        side "dantzig" dantzig_pivots t_dantzig;
        ("dantzig_bland_fallbacks", Json.Int fallbacks);
        ( "pivot_ratio_vs_baseline",
          Json.Float (float_of_int baseline_pivots /. float_of_int dantzig_pivots)
        );
        ("wall_speedup_vs_baseline", Json.Float (t_baseline /. t_dantzig));
        ("phase1", hist dantzig_tm "lp.simplex.phase1_ns");
        ("phase2", hist dantzig_tm "lp.simplex.phase2_ns");
      ]
  in
  (json, baseline_pivots, dantzig_pivots, t_baseline /. t_dantzig, agree)

(* ------------------------------------------------------------------ *)

let bench_milp ~seeds =
  let run ~warm =
    with_registry (fun () ->
        let t0 = now () in
        let objectives =
          List.map
            (fun seed ->
              let config, inputs = Scenario.milp_instance ~seed in
              match Lemur_placer.Milp.solve ~warm config inputs with
              | Some r -> Opt r.Lemur_placer.Milp.objective
              | None -> Infeas
              | exception Lemur_placer.Milp.Unsupported _ -> Unbound)
            seeds
        in
        (objectives, now () -. t0))
  in
  let (cold_obj, cold_wall), cold_tm = run ~warm:false in
  let (warm_obj, warm_wall), warm_tm = run ~warm:true in
  let side tm wall extras =
    Json.Obj
      ([
         ("nodes", Json.Int (counter_value tm "lp.milp.nodes"));
         ("simplex_pivots", Json.Int (total_simplex_pivots tm));
         ("wall_s", Json.Float wall);
       ]
      @ extras)
  in
  let agree = outcomes_agree cold_obj warm_obj in
  let json =
    Json.Obj
      [
        ("seeds", Json.Int (List.length seeds));
        ("objectives_match", Json.Bool agree);
        ("cold", side cold_tm cold_wall []);
        ( "warm",
          side warm_tm warm_wall
            [
              ("warm_nodes", Json.Int (counter_value warm_tm "lp.milp.warm_nodes"));
              ( "warm_solves",
                Json.Int (counter_value warm_tm "lp.simplex.warm_solves") );
              ( "warm_fallbacks",
                Json.Int (counter_value warm_tm "lp.simplex.warm_fallbacks") );
              ( "dual_pivots",
                Json.Int (counter_value warm_tm "lp.simplex.warm_dual_pivots") );
            ] );
        ( "pivot_ratio_cold_over_warm",
          Json.Float
            (float_of_int (total_simplex_pivots cold_tm)
            /. float_of_int (max 1 (total_simplex_pivots warm_tm))) );
      ]
  in
  (json, agree)

(* ------------------------------------------------------------------ *)

(* Canonical placement rendering for the cached-vs-uncached equivalence
   check: everything the solver decided, nothing wall-clock. *)
let render_outcome = function
  | Lemur_placer.Strategy.Infeasible { reason } -> "infeasible:" ^ reason
  | Lemur_placer.Strategy.Placed p ->
      let module S = Lemur_placer.Strategy in
      String.concat ";"
        (Printf.sprintf "%h|%h|%d|%d" p.S.total_rate p.S.total_marginal
           p.S.stages_used p.S.cores_used
        :: List.map
             (fun (r : S.chain_report) ->
               Printf.sprintf "%s|%h|%h|%h|%d|%s"
                 (Lemur_placer.Memo.plan_sig r.S.plan)
                 r.S.rate r.S.capacity r.S.latency r.S.bounces
                 (String.concat ","
                    (List.map string_of_int (Array.to_list r.S.cores))))
             p.S.chain_reports)

(* Demand-capped SLO variants of a scenario's inputs, the way the
   runtime engine derives effective SLOs from observed demand: t_max
   shrinks, t_min (the contract) and the structure stay put. Placing
   the same scenario across these levels is the paper's core loop —
   re-solving as conditions change — and is precisely what the
   SLO-free structural memo keys are built to accelerate. *)
let demand_levels = [ 1.0; 0.75; 0.5 ]

let at_demand factor (inputs : Lemur_placer.Plan.chain_input list) =
  if factor >= 1.0 then inputs
  else
    List.map
      (fun (i : Lemur_placer.Plan.chain_input) ->
        let slo = i.Lemur_placer.Plan.slo in
        let t_max = slo.Lemur_slo.Slo.t_max in
        if Float.is_finite t_max then
          {
            i with
            Lemur_placer.Plan.slo =
              {
                slo with
                Lemur_slo.Slo.t_max =
                  Float.max slo.Lemur_slo.Slo.t_min (t_max *. factor);
              };
          }
        else i)
      inputs

let bench_strategy ~seeds =
  let strategies = [ Lemur_placer.Strategy.Lemur; Lemur_placer.Strategy.Optimal ] in
  let pass ~fresh =
    List.concat_map
      (fun seed ->
        (* full-size scenarios: quick ones have chains too small to ever
           repeat a candidate evaluation, so they exercise only the
           cache's miss path *)
        let sc = Scenario.generate ~quick:false ~seed () in
        let cfg = Scenario.config sc in
        let inputs = Scenario.inputs sc in
        List.concat_map
          (fun factor ->
            let inputs = at_demand factor inputs in
            List.map
              (fun strategy ->
                if fresh then Lemur_placer.Memo.clear ();
                render_outcome
                  (Lemur_placer.Strategy.place strategy cfg inputs))
              strategies)
          demand_levels)
      seeds
  in
  let hits0, misses0 = Lemur_placer.Memo.stats () in
  let evictions0 = Lemur_placer.Memo.evictions () in
  let vc_hits0, vc_misses0 = Lemur_placer.Strategy.variant_cache_stats () in
  let t0 = now () in
  let cached = pass ~fresh:false in
  let wall = now () -. t0 in
  let hits1, misses1 = Lemur_placer.Memo.stats () in
  let vc_hits1, vc_misses1 = Lemur_placer.Strategy.variant_cache_stats () in
  let evictions = Lemur_placer.Memo.evictions () - evictions0 in
  let hits = hits1 - hits0 and misses = misses1 - misses0 in
  (* The same corpus with every cache dropped before each placement:
     structural memoization must be invisible in the results, or the
     cache is wrong, not fast. *)
  Lemur_placer.Strategy.set_variant_cache false;
  let tu0 = now () in
  let uncached = pass ~fresh:true in
  let uncached_wall = now () -. tu0 in
  Lemur_placer.Strategy.set_variant_cache true;
  let placements_match = List.for_all2 String.equal cached uncached in
  let places = List.length cached in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let json =
    Json.Obj
      [
        ("seeds", Json.Int (List.length seeds));
        ("places", Json.Int places);
        ("wall_s", Json.Float wall);
        ("places_per_sec", Json.Float (float_of_int places /. wall));
        ("cache_hits", Json.Int hits);
        ("cache_misses", Json.Int misses);
        ("cache_hit_rate", Json.Float hit_rate);
        ("cache_evictions", Json.Int evictions);
        ("varcache_hits", Json.Int (vc_hits1 - vc_hits0));
        ("varcache_misses", Json.Int (vc_misses1 - vc_misses0));
        ("uncached_wall_s", Json.Float uncached_wall);
        ("wall_speedup_vs_uncached", Json.Float (uncached_wall /. wall));
        ("placements_match", Json.Bool placements_match);
      ]
  in
  (json, hit_rate, placements_match)

let bench_fuzz ~jobs ~count =
  let t0 = now () in
  let s = Fuzz.run ~quick:true ~sim:true ~jobs ~seed:1 ~count () in
  let wall = now () -. t0 in
  Json.Obj
    [
      ("count", Json.Int count);
      ("jobs", Json.Int jobs);
      ("wall_s", Json.Float wall);
      ( "scenarios_per_sec",
        Json.Float (float_of_int s.Fuzz.scenarios /. wall) );
      ("failures", Json.Int (List.length s.Fuzz.failures));
      ("digest", Json.String s.Fuzz.digest);
      ("cache_hits", Json.Int s.Fuzz.cache_hits);
      ("cache_misses", Json.Int s.Fuzz.cache_misses);
      ("cache_evictions", Json.Int s.Fuzz.cache_evictions);
    ]

(* ------------------------------------------------------------------ *)

let read_baseline path =
  match
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Json.of_string s
  with
  | Ok doc -> (
      match Option.bind (Json.member "simplex_pivots" doc) Json.to_float with
      | Some v -> Ok (int_of_float v)
      | None -> Error (path ^ ": no \"simplex_pivots\" member"))
  | Error msg -> Error (path ^ ": " ^ msg)
  | exception Sys_error msg -> Error msg

let usage () =
  prerr_endline
    "usage: bench -- perf [--quick] [-j N] [--out FILE] [--baseline FILE] \
     [--min-hit-rate R]";
  2

let main args =
  let quick = ref false
  and jobs = ref 1
  and out = ref "BENCH_perf.json"
  and baseline = ref None
  and min_hit_rate = ref None in
  let rec parse = function
    | [] -> true
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | ("-j" | "--jobs") :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            jobs := j;
            parse rest
        | _ -> false)
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | "--baseline" :: file :: rest ->
        baseline := Some file;
        parse rest
    | "--min-hit-rate" :: v :: rest -> (
        match float_of_string_opt v with
        | Some r when r >= 0.0 && r <= 1.0 ->
            min_hit_rate := Some r;
            parse rest
        | _ -> false)
    | _ -> false
  in
  if not (parse args) then usage ()
  else begin
    let quick = !quick in
    let reps = if quick then 20 else 200 in
    let milp_seeds = List.init (if quick then 5 else 15) (fun i -> i + 1) in
    let strat_seeds = List.init (if quick then 10 else 50) (fun i -> i + 1) in
    let fuzz_count = if quick then 10 else 50 in
    Printf.printf "perf: simplex corpus (%d instances, %d timing passes)...\n%!"
      (List.length corpus) reps;
    let simplex_json, base_pivots, opt_pivots, speedup, agree =
      bench_simplex ~reps
    in
    Printf.printf
      "  pivots: baseline %d, optimized %d (%.2fx); wall speedup %.2fx; \
       outcomes agree: %b\n\
       %!"
      base_pivots opt_pivots
      (float_of_int base_pivots /. float_of_int opt_pivots)
      speedup agree;
    Printf.printf "perf: MILP warm vs cold (%d seeds)...\n%!"
      (List.length milp_seeds);
    let milp_json, milp_agree = bench_milp ~seeds:milp_seeds in
    Printf.printf "  objectives match: %b\n%!" milp_agree;
    Printf.printf "perf: strategy cache (%d seeds)...\n%!"
      (List.length strat_seeds);
    let strategy_json, hit_rate, placements_match =
      bench_strategy ~seeds:strat_seeds
    in
    Printf.printf
      "  hit rate %.1f%%; cached placements match uncached: %b\n%!"
      (100.0 *. hit_rate) placements_match;
    Printf.printf "perf: fuzz workload (%d scenarios, %d job(s))...\n%!"
      fuzz_count !jobs;
    let fuzz_json = bench_fuzz ~jobs:!jobs ~count:fuzz_count in
    let doc =
      Json.Obj
        [
          ("schema", Json.String "lemur.perf/1");
          ("quick", Json.Bool quick);
          (* the number the CI gate compares: total pivots of the
             default (Dantzig) solver over the fixed corpus *)
          ("simplex_pivots", Json.Int opt_pivots);
          ("baseline_simplex_pivots", Json.Int base_pivots);
          ("simplex", simplex_json);
          ("milp", milp_json);
          ("strategy", strategy_json);
          ("fuzz", fuzz_json);
        ]
    in
    let oc = open_out !out in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "perf: wrote %s\n%!" !out;
    if not (agree && milp_agree) then begin
      prerr_endline "perf: FAIL — optimized solver diverged from baseline";
      1
    end
    else if not placements_match then begin
      prerr_endline
        "perf: FAIL — cached placements differ from uncached (memo unsound)";
      1
    end
    else if
      match !min_hit_rate with Some r -> hit_rate < r | None -> false
    then begin
      Printf.eprintf
        "perf: FAIL — strategy cache hit rate %.1f%% below the %.1f%% floor\n"
        (100.0 *. hit_rate)
        (100.0 *. Option.get !min_hit_rate);
      1
    end
    else
      match !baseline with
      | None -> 0
      | Some path -> (
          match read_baseline path with
          | Error msg ->
              Printf.eprintf "perf: cannot read baseline: %s\n" msg;
              2
          | Ok expected ->
              let limit =
                int_of_float (Float.round (1.2 *. float_of_int expected))
              in
              if opt_pivots > limit then begin
                Printf.eprintf
                  "perf: FAIL — %d simplex pivots on the fixed corpus, >20%% \
                   above the checked-in baseline of %d\n"
                  opt_pivots expected;
                1
              end
              else begin
                Printf.printf
                  "perf: pivot regression gate OK (%d <= %d = 1.2 * %d)\n%!"
                  opt_pivots limit expected;
                0
              end)
  end
