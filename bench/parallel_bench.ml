(* The domain-parallelism bench behind `dune exec bench/main.exe -- parallel`:
   runs the same fuzz smoke twice — sequentially (-j 1) and fanned out
   over N pool domains — writes BENCH_parallel.json, and gates the two
   properties the pool promises:

   - determinism (hard gate): the fuzz summary digest at -j N must be
     byte-identical to -j 1;
   - speedup (gated only when --min-speedup > 0): wall(-j 1) / wall(-j N)
     must reach the threshold. Wall-clock speedup depends on the host
     having that many cores, so single-core machines and oversubscribed
     CI runners record the honest ratio without failing; pass
     --min-speedup 2.0 on a >= 4-core machine to enforce the paper's
     target. *)

module Fuzz = Lemur_check.Fuzz
module Pool = Lemur_util.Pool
module Json = Lemur_telemetry.Json

let default_seed = 1
let default_count = 200

let now = Unix.gettimeofday

let timed_fuzz ~jobs ~seed ~count =
  let t0 = now () in
  let s = Fuzz.run ~quick:true ~sim:true ~jobs ~seed ~count () in
  let wall = Lemur_util.Timing.duration ~start:t0 ~stop:(now ()) in
  (s, wall)

(* ------------------------------------------------------------------ *)
(* Adversarially skewed synthetic corpus: one ~100x-cost item first and
   one last, cheap items between. Under the old queue-per-item pool a
   worker that drew a heavy item serialized everything queued behind
   it; chunked work-stealing bounds the damage to the heavy item
   itself. The spin kernel is a pure integer recurrence, so results —
   and the digest over them — are identical at any -j. *)

let spin iters x =
  let h = ref x in
  for _ = 1 to iters do
    h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF;
    h := !h lxor (!h lsr 13)
  done;
  !h

let skew_items = 64
let skew_base_iters = 400_000
let skew_heavy_factor = 100

let skewed_corpus () =
  List.init skew_items (fun i ->
      let iters =
        if i = 0 || i = skew_items - 1 then skew_heavy_factor * skew_base_iters
        else skew_base_iters
      in
      (i, iters))

(* max/mean busy time across the executors that actually ran items: 1.0
   is a perfectly level run, [executors] is one executor doing
   everything. *)
let imbalance busy =
  let active = List.filter (fun b -> b > 0) (Array.to_list busy) in
  match active with
  | [] -> 1.0
  | _ ->
      let sum = List.fold_left ( + ) 0 active in
      let mean = float_of_int sum /. float_of_int (List.length active) in
      float_of_int (List.fold_left max 0 active) /. mean

let run_skewed ~jobs =
  Pool.reset_busy ();
  let t0 = now () in
  let results =
    Pool.map ~domains:jobs (fun (i, iters) -> spin iters (i + 1)) (skewed_corpus ())
  in
  let wall = Lemur_util.Timing.duration ~start:t0 ~stop:(now ()) in
  let busy = Pool.busy_ns () in
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat ","
            (List.map
               (function
                 | Ok v -> string_of_int v
                 | Error (e : Pool.job_error) -> "error:" ^ e.Pool.message)
               results)))
  in
  (digest, wall, busy)

let skewed_json ~jobs digest wall busy =
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("wall_s", Json.Float wall);
      ("digest", Json.String digest);
      ("imbalance", Json.Float (imbalance busy));
      ( "busy_ns",
        Json.List (List.map (fun b -> Json.Int b) (Array.to_list busy)) );
    ]

let run_json ~jobs (s : Fuzz.summary) wall =
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("wall_s", Json.Float wall);
      ( "scenarios_per_sec",
        Json.Float
          (if wall > 0.0 then float_of_int s.Fuzz.scenarios /. wall else 0.0)
      );
      ("scenarios", Json.Int s.Fuzz.scenarios);
      ("placements_checked", Json.Int s.Fuzz.placements_checked);
      ("failures", Json.Int (List.length s.Fuzz.failures));
      ("digest", Json.String s.Fuzz.digest);
    ]

let main args =
  let seed = ref default_seed
  and count = ref default_count
  and jobs = ref None
  and min_speedup = ref 0.0
  and out = ref "BENCH_parallel.json" in
  let rec parse = function
    | [] -> Ok ()
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--count" :: v :: rest ->
        count := int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := Some (int_of_string v);
        parse rest
    | "--min-speedup" :: v :: rest ->
        min_speedup := float_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | arg :: _ -> Error arg
  in
  match parse args with
  | Error arg ->
      Printf.eprintf
        "bench parallel: unknown argument %S\n\
         usage: bench -- parallel [--seed N] [--count N] [-j N] \
         [--min-speedup X] [--out FILE]\n"
        arg;
      2
  | Ok () ->
      let jobs =
        match !jobs with
        | Some j -> max 1 j
        | None -> max 2 (Pool.recommended_domains ())
      in
      Printf.printf
        "## parallel: fuzz smoke, %d scenarios from seed %d, -j 1 vs -j %d \
         (host reports %d domain(s))\n\
         %!"
        !count !seed jobs
        (Pool.recommended_domains ());
      let seq, seq_wall = timed_fuzz ~jobs:1 ~seed:!seed ~count:!count in
      Printf.printf "  -j 1: %.2fs, digest %s\n%!" seq_wall seq.Fuzz.digest;
      let par, par_wall = timed_fuzz ~jobs ~seed:!seed ~count:!count in
      Printf.printf "  -j %d: %.2fs, digest %s\n%!" jobs par_wall
        par.Fuzz.digest;
      let digests_equal = String.equal seq.Fuzz.digest par.Fuzz.digest in
      let speedup = if par_wall > 0.0 then seq_wall /. par_wall else 0.0 in
      let speedup_ok = !min_speedup <= 0.0 || speedup >= !min_speedup in
      Printf.printf
        "## parallel: skewed corpus, %d items with 2 x %dx outliers (first \
         and last), -j 1 vs -j %d\n\
         %!"
        skew_items skew_heavy_factor jobs;
      let sk_seq_digest, sk_seq_wall, sk_seq_busy = run_skewed ~jobs:1 in
      Printf.printf "  -j 1: %.2fs, digest %s\n%!" sk_seq_wall sk_seq_digest;
      let sk_par_digest, sk_par_wall, sk_par_busy = run_skewed ~jobs in
      Printf.printf "  -j %d: %.2fs, digest %s, imbalance %.2f\n%!" jobs
        sk_par_wall sk_par_digest (imbalance sk_par_busy);
      let skew_digests_equal = String.equal sk_seq_digest sk_par_digest in
      let skew_speedup =
        if sk_par_wall > 0.0 then sk_seq_wall /. sk_par_wall else 0.0
      in
      Printf.printf "skewed determinism: %s\nskewed speedup: %.2fx\n"
        (if skew_digests_equal then "ok, digests identical"
         else "DIGEST MISMATCH")
        skew_speedup;
      Printf.printf
        "determinism: %s\nspeedup: %.2fx (threshold %.2fx: %s)\n"
        (if digests_equal then "ok, digests identical" else "DIGEST MISMATCH")
        speedup !min_speedup
        (if !min_speedup <= 0.0 then "record-only"
         else if speedup_ok then "ok"
         else "FAILED");
      let doc =
        Json.Obj
          [
            ("schema", Json.String "lemur.bench.parallel/1");
            ("seed", Json.Int !seed);
            ("count", Json.Int !count);
            ("host_domains", Json.Int (Pool.recommended_domains ()));
            ("sequential", run_json ~jobs:1 seq seq_wall);
            ("parallel", run_json ~jobs par par_wall);
            ("digests_equal", Json.Bool digests_equal);
            ("speedup", Json.Float speedup);
            ("min_speedup", Json.Float !min_speedup);
            ("speedup_ok", Json.Bool speedup_ok);
            ( "skewed",
              Json.Obj
                [
                  ("items", Json.Int skew_items);
                  ("heavy_factor", Json.Int skew_heavy_factor);
                  ( "sequential",
                    skewed_json ~jobs:1 sk_seq_digest sk_seq_wall sk_seq_busy
                  );
                  ( "parallel",
                    skewed_json ~jobs sk_par_digest sk_par_wall sk_par_busy );
                  ("digests_equal", Json.Bool skew_digests_equal);
                  ("speedup", Json.Float skew_speedup);
                ] );
          ]
      in
      let oc = open_out !out in
      output_string oc (Json.to_string doc);
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s\n" !out;
      if digests_equal && skew_digests_equal && speedup_ok then 0 else 1
