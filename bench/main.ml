(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5). Run all experiments with

     dune exec bench/main.exe

   or a subset by name:

     dune exec bench/main.exe -- fig2a fig3b table4

   Each experiment prints the same rows/series the paper reports;
   EXPERIMENTS.md records the paper-vs-measured comparison. *)

open Lemur_placer
open Lemur_util

let deltas = [ 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 3.5; 4.0 ]

let comparison_strategies =
  [
    Strategy.Lemur; Strategy.Optimal; Strategy.Hw_preferred;
    Strategy.Sw_preferred; Strategy.Min_bounce; Strategy.Greedy;
  ]

let testbed_config () = Plan.default_config (Lemur_topology.Topology.testbed ())

let gbps x = Printf.sprintf "%.2f" (Units.to_gbps x)

(* Place with [strategy]; when feasible, execute on the simulator and
   return (placement, measured aggregate). *)
let place_and_measure config inputs strategy =
  match Strategy.place strategy config inputs with
  | Strategy.Infeasible _ -> None
  | Strategy.Placed p ->
      let measured =
        (Lemur_dataplane.Sim.run ~config ~placement:p ()).Lemur_dataplane.Sim
          .aggregate_throughput
      in
      Some (p, measured)

(* ------------------------------------------------------------------ *)
(* Figure 2(a-e): aggregate throughput vs delta per chain set          *)

let fig2_sets =
  [
    ("fig2a", [ 1; 2; 3; 4 ]); ("fig2b", [ 1; 2; 3 ]); ("fig2c", [ 1; 2; 4 ]);
    ("fig2d", [ 1; 3; 4 ]); ("fig2e", [ 2; 3; 4 ]);
  ]

let run_fig2 name set =
  let config = testbed_config () in
  Printf.printf "\n## %s: measured aggregate throughput (Gbps) vs delta, chains {%s}\n"
    name
    (String.concat "," (List.map string_of_int set));
  Printf.printf "   ('-' = no feasible placement; Lemur shows measured [predicted])\n";
  let headers =
    "delta" :: "agg t_min" :: List.map Strategy.name comparison_strategies
  in
  let table = Texttable.create ~headers in
  List.iter
    (fun delta ->
      let inputs = Lemur.Chains.inputs_for_delta config ~delta set in
      let agg_tmin =
        Listx.sum_by (fun i -> i.Plan.slo.Lemur_slo.Slo.t_min) inputs
      in
      let cells =
        List.map
          (fun s ->
            match place_and_measure config inputs s with
            | None -> "-"
            | Some (p, measured) ->
                if s = Strategy.Lemur then
                  Printf.sprintf "%s [%s]" (gbps measured) (gbps p.Strategy.total_rate)
                else gbps measured)
          comparison_strategies
      in
      Texttable.add_row table (Printf.sprintf "%.1f" delta :: gbps agg_tmin :: cells))
    deltas;
  Texttable.print table

(* Lemur's marginal-throughput lead over the best baseline (the paper:
   "a marginal throughput lead ranging from 500 Mbps to nearly 24 Gbps"). *)
let run_marginal_lead () =
  let config = testbed_config () in
  Printf.printf "\n## marginal_lead: Lemur's lead over the best alternative per cell\n";
  let leads = ref [] in
  List.iter
    (fun (_, set) ->
      List.iter
        (fun delta ->
          let inputs = Lemur.Chains.inputs_for_delta config ~delta set in
          match Strategy.place Strategy.Lemur config inputs with
          | Strategy.Infeasible _ -> ()
          | Strategy.Placed lemur ->
              let best_other =
                List.filter_map
                  (fun s ->
                    match Strategy.place s config inputs with
                    | Strategy.Placed p -> Some p.Strategy.total_marginal
                    | Strategy.Infeasible _ -> None)
                  [
                    Strategy.Hw_preferred; Strategy.Sw_preferred;
                    Strategy.Min_bounce; Strategy.Greedy;
                  ]
              in
              let lead =
                lemur.Strategy.total_marginal
                -. List.fold_left Float.max 0.0 best_other
              in
              leads := lead :: !leads)
        deltas)
    fig2_sets;
  let s = Lemur_util.Stats.summarize !leads in
  Printf.printf
    "across %d feasible cells: min %s, max %s, mean %s Gbps\n\
     (paper: 500 Mbps to ~24 Gbps on 40G links; max lead as fraction of the\n\
    \ 40G server link: %.0f%%, paper: >50%%)\n"
    s.Lemur_util.Stats.n (gbps s.Lemur_util.Stats.min) (gbps s.Lemur_util.Stats.max)
    (gbps s.Lemur_util.Stats.mean)
    (100.0 *. s.Lemur_util.Stats.max /. Units.gbps 40.0)

(* Feasibility summary across all Fig 2 cells (the paper: Lemur always
   finds a feasible solution; others manage 17-76% of the cases). *)
let run_feasibility_summary () =
  let config = testbed_config () in
  Printf.printf "\n## feasibility: fraction of (chain set x delta) cells solved per scheme\n";
  let cells =
    List.concat_map (fun (_, set) -> List.map (fun d -> (set, d)) deltas) fig2_sets
  in
  let live_cells =
    List.filter
      (fun (set, d) ->
        let inputs = Lemur.Chains.inputs_for_delta config ~delta:d set in
        List.exists
          (fun s -> Strategy.is_feasible (Strategy.place s config inputs))
          comparison_strategies)
      cells
  in
  let table = Texttable.create ~headers:[ "scheme"; "feasible"; "of"; "fraction" ] in
  List.iter
    (fun s ->
      let n =
        List.length
          (List.filter
             (fun (set, d) ->
               let inputs = Lemur.Chains.inputs_for_delta config ~delta:d set in
               Strategy.is_feasible (Strategy.place s config inputs))
             live_cells)
      in
      Texttable.add_row table
        [
          Strategy.name s; string_of_int n; string_of_int (List.length live_cells);
          Printf.sprintf "%.0f%%"
            (100.0 *. float_of_int n /. float_of_int (List.length live_cells));
        ])
    comparison_strategies;
  Texttable.print table

(* ------------------------------------------------------------------ *)
(* Figure 2f: component ablations                                       *)

let run_fig2f () =
  let config = testbed_config () in
  Printf.printf "\n## fig2f: Lemur component ablations, chains {1,2,3,4} (measured Gbps)\n";
  let schemes = [ Strategy.Lemur; Strategy.No_profiling; Strategy.No_core_alloc ] in
  let table = Texttable.create ~headers:("delta" :: List.map Strategy.name schemes) in
  List.iter
    (fun delta ->
      let inputs = Lemur.Chains.inputs_for_delta config ~delta [ 1; 2; 3; 4 ] in
      let cells =
        List.map
          (fun s ->
            match place_and_measure config inputs s with
            | None -> "-"
            | Some (_, m) -> gbps m)
          schemes
      in
      Texttable.add_row table (Printf.sprintf "%.1f" delta :: cells))
    deltas;
  Texttable.print table

(* ------------------------------------------------------------------ *)
(* Table 1: SLO use cases                                               *)

let run_table1 () =
  Printf.printf "\n## table1: SLO specifications capture the operator use cases\n";
  let table = Texttable.create ~headers:[ "t_min"; "t_max"; "classified as" ] in
  let a = Units.gbps 2.0 and b = Units.gbps 8.0 in
  List.iter
    (fun (tmin, tmax, ltmin, ltmax) ->
      let slo = Lemur_slo.Slo.make ~t_min:tmin ~t_max:tmax () in
      Texttable.add_row table
        [ ltmin; ltmax; Lemur_slo.Slo.use_case_name (Lemur_slo.Slo.classify slo) ])
    [
      (0.0, infinity, "0", "inf");
      (0.0, a, "0", "a");
      (a, a, "a", "a");
      (a, b, "a", "b");
      (a, infinity, "a", "inf");
    ];
  Texttable.print table

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3: the evaluation's chains and NF capability matrix     *)

let run_table2 () =
  Printf.printf "\n## table2: the five canonical NF chains\n";
  let table = Texttable.create ~headers:[ "Chain"; "Specification"; "NFs" ] in
  List.iter
    (fun n ->
      Texttable.add_row table
        [
          Printf.sprintf "Chain %d" n;
          Lemur.Chains.spec_text n;
          string_of_int (Lemur_spec.Graph.size (Lemur.Chains.graph n));
        ])
    [ 1; 2; 3; 4; 5 ];
  Texttable.print table;
  Printf.printf "chains 1-4 total %d NF instances (paper: 34)\n"
    (Lemur.Chains.nf_instance_count [ 1; 2; 3; 4 ])

let run_table3 () =
  Printf.printf "\n## table3: NFs and available placement choices\n";
  let table =
    Texttable.create ~headers:[ "NF"; "Spec"; "C++"; "P4"; "eBPF"; "OF"; "Replicable" ]
  in
  List.iter
    (fun kind ->
      let dot target =
        if List.mem target (Lemur_nf.Kind.targets kind) then "x" else ""
      in
      Texttable.add_row table
        [
          Lemur_nf.Kind.name kind;
          Lemur_nf.Kind.spec_summary kind;
          dot Lemur_nf.Target.Cpp; dot Lemur_nf.Target.P4;
          dot Lemur_nf.Target.Ebpf; dot Lemur_nf.Target.Openflow;
          (if Lemur_nf.Kind.replicable kind then "yes" else "NO");
        ])
    Lemur_nf.Kind.all;
  Texttable.print table;
  Printf.printf "(IPv4Fwd is artificially P4-only in the evaluation, as in the paper)\n"

(* ------------------------------------------------------------------ *)
(* Table 4: profiled NF cycle costs                                     *)

let run_table4 () =
  Printf.printf "\n## table4: profiled NF costs (CPU cycles/packet, 500 runs)\n";
  let profiler = Lemur_profiler.Profiler.create () in
  let table = Texttable.create ~headers:[ "NF"; "NUMA"; "Mean"; "Min"; "Max" ] in
  List.iter
    (fun (label, numa, s) ->
      Texttable.add_row table
        [
          label; numa;
          Printf.sprintf "%.0f" s.Stats.mean;
          Printf.sprintf "%.0f" s.Stats.min;
          Printf.sprintf "%.0f" s.Stats.max;
        ])
    (Lemur_profiler.Profiler.table4 profiler);
  Texttable.print table;
  Printf.printf "worst-case vs mean across all NFs: +%.1f%% (paper: within 6.5%%)\n"
    (100.0 *. Lemur_profiler.Profiler.stability_bound profiler)

(* ------------------------------------------------------------------ *)
(* §3.2: size-dependent cost models ("we profile cycle counts for       *)
(* different sizes and use a linear model")                             *)

let run_size_models () =
  Printf.printf "\n## size_models: fitted cycles-vs-state-size linear models\n";
  let profiler = Lemur_profiler.Profiler.create () in
  let table =
    Texttable.create
      ~headers:[ "NF"; "fitted cycles/entry"; "datasheet"; "intercept"; "predict(2x ref)" ]
  in
  List.iter
    (fun kind ->
      match Lemur_profiler.Profiler.fit_size_model profiler kind Lemur_nf.Datasheet.Same with
      | None -> ()
      | Some (slope, intercept) ->
          let ref_size =
            Option.value (Lemur_nf.Datasheet.reference_size kind) ~default:0
          in
          let pred =
            Option.get
              (Lemur_profiler.Profiler.predict_cycles profiler kind
                 Lemur_nf.Datasheet.Same ~size:(2 * ref_size))
          in
          Texttable.add_row table
            [
              Lemur_nf.Kind.name kind;
              Printf.sprintf "%.4f" slope;
              Printf.sprintf "%.4f"
                (Option.value (Lemur_nf.Datasheet.size_slope kind) ~default:0.0);
              Printf.sprintf "%.0f" intercept;
              Printf.sprintf "%.0f cycles" pred;
            ])
    Lemur_nf.Kind.all;
  Texttable.print table;
  Printf.printf
    "(the Placer consumes these through worst-case per-instance profiles;\n\
    \ the fit recovers the ground-truth slope from noisy runs)\n"

(* ------------------------------------------------------------------ *)
(* §5.2: profiling-error sensitivity                                    *)

let run_profiling_error () =
  Printf.printf
    "\n## profiling_error: Lemur marginal throughput under profile under-estimation\n";
  let topo = Lemur_topology.Topology.testbed () in
  let table = Texttable.create ~headers:[ "error"; "marginal (Gbps)"; "feasible" ] in
  List.iter
    (fun error ->
      let config =
        { (Plan.default_config topo) with
          Plan.profiler = Lemur_profiler.Profiler.create ~error () }
      in
      let inputs = Lemur.Chains.inputs_for_delta config ~delta:1.0 [ 1; 2; 3; 4 ] in
      match Strategy.place Strategy.Lemur config inputs with
      | Strategy.Infeasible _ ->
          Texttable.add_row table [ Printf.sprintf "%.0f%%" (error *. 100.0); "-"; "no" ]
      | Strategy.Placed p ->
          Texttable.add_row table
            [
              Printf.sprintf "%.0f%%" (error *. 100.0);
              gbps p.Strategy.total_marginal; "yes";
            ])
    [ 0.0; 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.07; 0.08; 0.09; 0.10 ];
  Texttable.print table;
  Printf.printf "(paper: configuration unchanged up to 8%% error)\n"

(* ------------------------------------------------------------------ *)
(* §5.2: the extreme P4 stage configuration                             *)

let extreme_nats = 17

let extreme_input config delta =
  let arms =
    String.concat ", "
      (List.init extreme_nats (fun k -> Printf.sprintf "{'b': %d, NAT}" (k + 1)))
  in
  let g =
    Lemur_spec.Loader.chain_of_string ~name:"extreme"
      (Printf.sprintf "BPF -> [%s] -> IPv4Fwd" arms)
  in
  let base = Lemur.Chains.base_rate config g in
  {
    Plan.id = "extreme";
    graph = g;
    slo = Lemur_slo.Slo.make ~t_min:(delta *. base) ~t_max:(Units.gbps 100.0) ();
  }

let run_extreme_p4 () =
  let config = testbed_config () in
  Printf.printf
    "\n## extreme_p4: BPF -> %dx NAT (branched) -> IPv4Fwd at delta 0.5\n" extreme_nats;
  Printf.printf
    "   (recalibrated from the paper's 11 NATs: our compiler model packs\n\
    \    parallel branches harder, so the stage wall sits at %d NATs)\n"
    extreme_nats;
  let input = extreme_input config 0.5 in
  (match Strategy.place Strategy.Lemur config [ input ] with
  | Strategy.Infeasible { reason } -> Printf.printf "Lemur: infeasible (%s)\n" reason
  | Strategy.Placed p ->
      let r = List.hd p.Strategy.chain_reports in
      let on_switch =
        Array.fold_left (fun acc l -> if l = Plan.Switch then acc + 1 else acc) 0
          r.Strategy.plan.Plan.locs
      in
      let proj = Plan.switch_projection r.Strategy.plan in
      let optimized =
        Lemur_p4.Pipeline.table_graph ~mode:Lemur_p4.Pipeline.Optimized [ proj ]
      in
      let naive =
        Lemur_p4.Pipeline.table_graph ~mode:Lemur_p4.Pipeline.Naive [ proj ]
      in
      let capacity = 4 in
      Printf.printf
        "Lemur: feasible; %d of %d NFs on the switch (%d moved to the server)\n"
        on_switch
        (Lemur_spec.Graph.size input.Plan.graph)
        (Lemur_spec.Graph.size input.Plan.graph - on_switch);
      let table = Texttable.create ~headers:[ "stage model"; "stages"; "paper" ] in
      Texttable.add_row table
        [
          "compiler (packed)";
          string_of_int
            (Lemur_p4.Stagepack.pack ~capacity optimized).Lemur_p4.Stagepack.stages_used;
          "12";
        ];
      Texttable.add_row table
        [
          "conservative estimate";
          string_of_int (Lemur_p4.Stagepack.estimate ~capacity optimized);
          "14";
        ];
      Texttable.add_row table
        [ "naive codegen"; string_of_int (Lemur_p4.Stagepack.naive_stages naive); "27" ];
      Texttable.print table);
  let table = Texttable.create ~headers:[ "scheme"; "outcome" ] in
  List.iter
    (fun s ->
      let outcome =
        match Strategy.place s config [ input ] with
        | Strategy.Placed p ->
            Printf.sprintf "feasible (%s Gbps)" (gbps p.Strategy.total_rate)
        | Strategy.Infeasible { reason } -> "infeasible: " ^ reason
      in
      Texttable.add_row table [ Strategy.name s; outcome ])
    comparison_strategies;
  Texttable.print table

(* ------------------------------------------------------------------ *)
(* Figure 3a: multiple servers                                          *)

let run_fig3a () =
  Printf.printf "\n## fig3a: chains {1,2,3} on one vs two 8-core servers (measured Gbps)\n";
  let table = Texttable.create ~headers:[ "delta"; "1 server"; "2 servers" ] in
  List.iter
    (fun delta ->
      let cell num_servers =
        let topo =
          Lemur_topology.Topology.testbed ~num_servers ~cores_per_socket:4 ()
        in
        let config = Plan.default_config topo in
        let inputs = Lemur.Chains.inputs_for_delta config ~delta [ 1; 2; 3 ] in
        match place_and_measure config inputs Strategy.Lemur with
        | None -> "-"
        | Some (_, m) -> gbps m
      in
      Texttable.add_row table [ Printf.sprintf "%.1f" delta; cell 1; cell 2 ])
    [ 0.5; 1.0; 1.5; 2.0 ];
  Texttable.print table;
  Printf.printf
    "(paper: 1 server gets less than half the 2-server rate at 0.5, infeasible at 1.5)\n"

(* ------------------------------------------------------------------ *)
(* Figure 3b: SmartNIC offload of chain 5                               *)

let run_fig3b () =
  Printf.printf
    "\n## fig3b: chain 5 (ChaCha) with and without the SmartNIC (measured Gbps)\n";
  let table = Texttable.create ~headers:[ "delta"; "server only"; "with SmartNIC" ] in
  List.iter
    (fun delta ->
      let cell smartnic =
        let topo = Lemur_topology.Topology.testbed ~smartnic () in
        let config = Plan.default_config topo in
        let inputs = Lemur.Chains.inputs_for_delta config ~delta [ 5 ] in
        match place_and_measure config inputs Strategy.Lemur with
        | None -> "-"
        | Some (_, m) -> gbps m
      in
      Texttable.add_row table [ Printf.sprintf "%.1f" delta; cell false; cell true ])
    [ 0.5; 1.0; 2.0; 4.0; 8.0; 9.0; 12.0 ];
  Texttable.print table;
  Printf.printf
    "(paper: NIC offload approaches the 40G line rate; at high enough t_min the\n\
    \ server-only deployment cannot satisfy the SLO even with every core)\n"

(* ------------------------------------------------------------------ *)
(* Figure 3c: OpenFlow switch offload of chain 3's ACL                  *)

let run_fig3c () =
  Printf.printf "\n## fig3c: chain 3 with ACL on an OpenFlow switch vs on the server\n";
  (* A PISA-less deployment: dumb ToR, one server, optionally the OF
     switch. The eval-only IPv4Fwd restriction is lifted here (no PISA
     switch exists to host it). *)
  let cell ofswitch =
    let topo = Lemur_topology.Topology.no_pisa_testbed ~ofswitch () in
    let config = { (Plan.default_config topo) with Plan.eval_capabilities = false } in
    let g = Lemur.Chains.graph 3 in
    let base = Lemur.Chains.base_rate config g in
    let input =
      {
        Plan.id = "chain3";
        graph = g;
        slo = Lemur_slo.Slo.make ~t_min:(0.5 *. base) ~t_max:(Units.gbps 100.0) ();
      }
    in
    match Strategy.place Strategy.Lemur config [ input ] with
    | Strategy.Infeasible { reason } -> "infeasible: " ^ reason
    | Strategy.Placed p ->
        let m =
          (Lemur_dataplane.Sim.run ~config ~placement:p ()).Lemur_dataplane.Sim
            .aggregate_throughput
        in
        let r = List.hd p.Strategy.chain_reports in
        let acl_node =
          List.find
            (fun n ->
              n.Lemur_spec.Graph.instance.Lemur_nf.Instance.kind = Lemur_nf.Kind.Acl)
            (Lemur_spec.Graph.nodes g)
        in
        Format.asprintf "%s Gbps (ACL on %a)" (gbps m) Plan.pp_location
          r.Strategy.plan.Plan.locs.(acl_node.Lemur_spec.Graph.id)
  in
  let table = Texttable.create ~headers:[ "deployment"; "chain 3 throughput" ] in
  Texttable.add_row table [ "OpenFlow switch available"; cell true ];
  Texttable.add_row table [ "server only"; cell false ];
  Texttable.print table;
  Printf.printf "(paper: 7710 Mbps with OF offload vs 693 Mbps via the server)\n"

(* ------------------------------------------------------------------ *)
(* §5.3: latency constraints                                            *)

let run_latency () =
  Printf.printf "\n## latency: chains {1,4} under per-chain latency SLOs\n";
  let config = testbed_config () in
  let table =
    Texttable.create
      ~headers:
        [ "d_max"; "feasible"; "rate (Gbps)"; "max bounces"; "worst latency (us)" ]
  in
  List.iter
    (fun d_max_us ->
      let inputs =
        List.map
          (fun i ->
            {
              i with
              Plan.slo = { i.Plan.slo with Lemur_slo.Slo.d_max = Units.us d_max_us };
            })
          (Lemur.Chains.inputs_for_delta config ~delta:0.5 [ 1; 4 ])
      in
      let label =
        if d_max_us >= 1000.0 then "(none)" else Printf.sprintf "%.0f us" d_max_us
      in
      match Strategy.place Strategy.Lemur config inputs with
      | Strategy.Infeasible { reason } ->
          Texttable.add_row table [ label; "no: " ^ reason; "-"; "-"; "-" ]
      | Strategy.Placed p ->
          let bounces =
            List.fold_left (fun acc r -> max acc r.Strategy.bounces) 0
              p.Strategy.chain_reports
          in
          let worst =
            List.fold_left (fun acc r -> Float.max acc r.Strategy.latency) 0.0
              p.Strategy.chain_reports
          in
          Texttable.add_row table
            [
              label; "yes"; gbps p.Strategy.total_rate; string_of_int bounces;
              Printf.sprintf "%.1f" (Units.to_us worst);
            ])
    [ 1000.0; 45.0; 35.0; 25.0 ];
  Texttable.print table;
  Printf.printf
    "(paper: 45us allows bounce-heavy placement, >21 Gbps; tighter bounds force\n\
    \ fewer bounces at lower rate, then infeasibility. The paper's thresholds\n\
    \ are 45/25us on its testbed; ours shift to 45/35us because our Dedup alone\n\
    \ executes for ~19.5us.)\n"

(* ------------------------------------------------------------------ *)
(* §5.3: meta-compiler LoC and overheads                                *)

let run_codegen_loc () =
  Printf.printf "\n## codegen_loc: meta-compiler output for chains {1,2,3,4}\n";
  let config = testbed_config () in
  let inputs = Lemur.Chains.inputs_for_delta config ~delta:0.5 [ 1; 2; 3; 4 ] in
  match Strategy.place Strategy.Lemur config inputs with
  | Strategy.Infeasible { reason } -> Printf.printf "infeasible: %s\n" reason
  | Strategy.Placed p ->
      let art = Lemur_codegen.Codegen.compile config p in
      Format.printf "%a" Lemur_codegen.Codegen.pp_summary art;
      let loc = Lemur_codegen.Codegen.loc art in
      Printf.printf
        "auto-generated fraction: %.0f%% (paper: more than a third of the P4)\n"
        (100.0 *. loc.Lemur_codegen.Codegen.generated_fraction);
      Printf.printf "steering lines: %d (paper: ~600 of ~820 generated)\n"
        loc.Lemur_codegen.Codegen.steering_loc;
      Printf.printf
        "framework overheads: 2 P4 stages (NSH), %.0f cycles encap/decap, %.0f cycles multi-core LB\n"
        Lemur_bess.Cost.nsh_overhead_cycles Lemur_bess.Cost.multicore_lb_cycles

(* ------------------------------------------------------------------ *)
(* The open-sourced MILP formulation, cross-checked against Optimal     *)

let run_milp () =
  Printf.printf
    "\n## milp: the MILP formulation vs the search-based Optimal (small instance)\n";
  let config = testbed_config () in
  let mk id text tmin =
    {
      Plan.id;
      graph = Lemur_spec.Loader.chain_of_string ~name:id text;
      slo = Lemur_slo.Slo.make ~t_min:tmin ~t_max:(Units.gbps 100.0) ();
    }
  in
  let inputs =
    [ mk "a" "ACL -> Encrypt -> IPv4Fwd" 2e9; mk "b" "BPF -> NAT -> Dedup -> IPv4Fwd" 1e9 ]
  in
  (match Milp.solve config inputs with
  | None -> Printf.printf "MILP: infeasible\n"
  | Some r ->
      Printf.printf "MILP objective: %s Gbps marginal\n" (gbps r.Milp.objective);
      List.iter
        (fun (id, rate) ->
          Printf.printf "  %s: rate %s Gbps, cores %d, server NFs [%s]\n" id
            (gbps rate)
            (List.assoc id r.Milp.cores)
            (String.concat ", " (List.assoc id r.Milp.server_nfs)))
        r.Milp.rates);
  match Strategy.place Strategy.Optimal config inputs with
  | Strategy.Placed p ->
      Printf.printf "search Optimal objective: %s Gbps marginal\n"
        (gbps p.Strategy.total_marginal);
      Printf.printf
        "(the MILP omits the 180-cycle multi-core LB penalty, so it sits\n\
        \ slightly above the search optimum; see lib/placer/milp.mli)\n"
  | Strategy.Infeasible { reason } -> Printf.printf "Optimal: %s\n" reason

(* ------------------------------------------------------------------ *)
(* §5.3: Placer scaling (with a Bechamel microbenchmark)                *)

let run_placer_scaling () =
  Printf.printf
    "\n## placer_scaling: heuristic vs brute-force on chains {1,2,3,4} (34 NFs)\n";
  let config = testbed_config () in
  let inputs = Lemur.Chains.inputs_for_delta config ~delta:1.0 [ 1; 2; 3; 4 ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_lemur, _ = time (fun () -> Strategy.place Strategy.Lemur config inputs) in
  let t_opt, _ = time (fun () -> Strategy.place Strategy.Optimal config inputs) in
  let table = Texttable.create ~headers:[ "algorithm"; "wall time (s)"; "paper" ] in
  Texttable.add_row table [ "Lemur heuristic"; Printf.sprintf "%.4f" t_lemur; "3.5 s" ];
  Texttable.add_row table
    [ "brute force (Optimal)"; Printf.sprintf "%.4f" t_opt; "14901 s (~4 h)" ];
  Texttable.print table;
  Printf.printf "speedup: %.0fx (paper: ~4000x)\n" (t_opt /. Float.max 1e-9 t_lemur);
  let open Bechamel in
  let test =
    Test.make ~name:"lemur-heuristic-4-chains"
      (Staged.stage (fun () -> ignore (Strategy.place Strategy.Lemur config inputs)))
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark =
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ())
      [ clock ] test
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      clock benchmark
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> Printf.printf "bechamel %s: %.3f ms/run\n" name (est /. 1e6)
      | _ -> ())
    results

(* ------------------------------------------------------------------ *)
(* Ablation: the three coalescing variants of §3.2 step 2               *)

let run_ablation_coalescing () =
  Printf.printf
    "\n## ablation_coalescing: marginal throughput (Gbps) of each heuristic variant\n";
  Printf.printf
    "   (Lemur = best of the three; aggressive can backfire, per §3.2)\n";
  let config = testbed_config () in
  let table =
    Texttable.create
      ~headers:[ "chains"; "delta"; "baseline"; "aggressive"; "conservative"; "Lemur" ]
  in
  List.iter
    (fun (set, delta) ->
      let inputs = Lemur.Chains.inputs_for_delta config ~delta set in
      let row =
        match Strategy.lemur_variants config inputs with
        | None -> [ "-"; "-"; "-" ]
        | Some variants ->
            List.map
              (fun plans ->
                match
                  Strategy.evaluate_plans Strategy.Lemur config Alloc.Slo_driven plans
                with
                | Strategy.Placed p -> gbps p.Strategy.total_marginal
                | Strategy.Infeasible _ -> "-")
              variants
      in
      let lemur =
        match Strategy.place Strategy.Lemur config inputs with
        | Strategy.Placed p -> gbps p.Strategy.total_marginal
        | Strategy.Infeasible _ -> "-"
      in
      Texttable.add_row table
        (String.concat "," (List.map string_of_int set)
         :: Printf.sprintf "%.1f" delta :: row
        @ [ lemur ]))
    [
      ([ 1; 2; 3; 4 ], 0.5); ([ 1; 2; 3; 4 ], 1.0); ([ 1; 3; 4 ], 0.5);
      ([ 1; 3; 4 ], 1.0); ([ 2; 3; 4 ], 1.0);
    ];
  Texttable.print table

(* ------------------------------------------------------------------ *)
(* Ablation: run-to-completion vs pipelined execution (§3.2's B/C       *)
(* example and §5.3's overhead constants)                               *)

let run_ablation_rtc () =
  Printf.printf
    "\n## ablation_rtc: run-to-completion vs pipelined subgroups (one chain, equal cores)\n";
  let clock = Units.ghz 1.7 in
  let table =
    Texttable.create
      ~headers:
        [ "NF cycles (B, C)"; "coalesced {B,C} 2 cores"; "pipelined {B}+{C} 1+1 cores" ]
  in
  List.iter
    (fun (cb, cc) ->
      let coalesced =
        Lemur_bess.Cost.subgroup_rate ~clock_hz:clock ~cores:2 ~pkt_bytes:1500
          ~nf_cycles:[ cb; cc ] ()
      in
      let pipelined =
        Float.min
          (Lemur_bess.Cost.subgroup_rate ~clock_hz:clock ~cores:1 ~pkt_bytes:1500
             ~nf_cycles:[ cb ] ())
          (Lemur_bess.Cost.subgroup_rate ~clock_hz:clock ~cores:1 ~pkt_bytes:1500
             ~nf_cycles:[ cc ] ())
      in
      Texttable.add_row table
        [
          Printf.sprintf "%.0f, %.0f" cb cc; gbps coalesced; gbps pipelined;
        ])
    [ (1000.0, 1000.0); (8000.0, 8000.0); (500.0, 8000.0); (100.0, 100.0) ];
  Texttable.print table;
  Printf.printf
    "(run-to-completion wins on balanced pairs because the per-hop NSH overhead\n\
    \ (220 cy) exceeds the replication LB cost (180 cy), and wins big on\n\
    \ unbalanced pairs where pipelining is throttled by its slowest stage)\n"

(* ------------------------------------------------------------------ *)
(* Extension: Metron-style core tagging (§3.2/§4.2 future work)         *)

let run_ablation_metron () =
  Printf.printf
    "\n## ablation_metron: ToR-side core tagging (Metron [18]) vs software demux\n";
  let table =
    Texttable.create ~headers:[ "delta"; "software demux"; "core tagging" ]
  in
  List.iter
    (fun delta ->
      let cell metron_steering =
        let config = { (testbed_config ()) with Plan.metron_steering } in
        let inputs = Lemur.Chains.inputs_for_delta config ~delta [ 1; 2; 3; 4 ] in
        match place_and_measure config inputs Strategy.Lemur with
        | None -> "-"
        | Some (_, m) -> gbps m
      in
      Texttable.add_row table [ Printf.sprintf "%.1f" delta; cell false; cell true ])
    [ 0.5; 1.0; 1.5; 2.0 ];
  Texttable.print table;
  Printf.printf
    "(tagging removes the %.0f-cycle LB penalty on replicated subgroups and the\n\
    \ demux hop; the paper leaves this to future work, citing Metron)\n"
    Lemur_bess.Cost.multicore_lb_cycles

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", run_table3);
    ("table4", run_table4);
    ("size_models", run_size_models);
    ("fig2a", fun () -> run_fig2 "fig2a" [ 1; 2; 3; 4 ]);
    ("fig2b", fun () -> run_fig2 "fig2b" [ 1; 2; 3 ]);
    ("fig2c", fun () -> run_fig2 "fig2c" [ 1; 2; 4 ]);
    ("fig2d", fun () -> run_fig2 "fig2d" [ 1; 3; 4 ]);
    ("fig2e", fun () -> run_fig2 "fig2e" [ 2; 3; 4 ]);
    ("fig2f", run_fig2f);
    ("feasibility", run_feasibility_summary);
    ("marginal_lead", run_marginal_lead);
    ("profiling_error", run_profiling_error);
    ("extreme_p4", run_extreme_p4);
    ("fig3a", run_fig3a);
    ("fig3b", run_fig3b);
    ("fig3c", run_fig3c);
    ("latency", run_latency);
    ("codegen_loc", run_codegen_loc);
    ("ablation_coalescing", run_ablation_coalescing);
    ("ablation_rtc", run_ablation_rtc);
    ("ablation_metron", run_ablation_metron);
    ("milp", run_milp);
    ("placer_scaling", run_placer_scaling);
  ]

(* When [--telemetry-dir DIR] precedes the experiment names, each
   experiment runs against a fresh telemetry registry and dumps it to
   DIR/<experiment>.json afterwards (see docs/OBSERVABILITY.md). *)
let with_experiment_telemetry dir name f =
  match dir with
  | None -> f ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let t = Lemur_telemetry.Telemetry.create () in
      Lemur_telemetry.Telemetry.set_current t;
      Fun.protect
        ~finally:(fun () ->
          Lemur_telemetry.Telemetry.set_current Lemur_telemetry.Telemetry.disabled;
          let path = Filename.concat dir (name ^ ".json") in
          try Lemur_telemetry.Telemetry.write_json t path
          with Sys_error msg ->
            Printf.eprintf "bench: cannot write telemetry dump: %s\n" msg)
        f

let () =
  (* `bench -- perf [...]` is the perf harness (see docs/PERFORMANCE.md),
     not a paper experiment; it owns its own flags and exit code. *)
  (match Array.to_list Sys.argv with
  | _ :: "perf" :: rest -> exit (Perf.main rest)
  | _ :: "runtime" :: rest -> exit (Runtime_bench.main rest)
  | _ :: "parallel" :: rest -> exit (Parallel_bench.main rest)
  | _ :: "scale" :: rest -> exit (Scale_bench.main rest)
  | _ :: "packets" :: rest -> exit (Packet_bench.main rest)
  | _ :: "classify" :: rest -> exit (Classify_bench.main rest)
  | _ -> ());
  let telemetry_dir, argv_rest =
    match Array.to_list Sys.argv with
    | _ :: "--telemetry-dir" :: dir :: rest -> (Some dir, rest)
    | _ :: rest -> (None, rest)
    | [] -> (None, [])
  in
  let requested =
    match argv_rest with [] -> List.map fst experiments | names -> names
  in
  Printf.printf "Lemur evaluation harness (see EXPERIMENTS.md for paper-vs-measured)\n";
  List.iter
    (fun name ->
      match (name, List.assoc_opt name experiments) with
      | "list", _ ->
          Printf.printf "experiments: %s\n"
            (String.concat ", " (List.map fst experiments))
      | _, Some f -> with_experiment_telemetry telemetry_dir name f
      | _, None ->
          Printf.printf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments)))
    requested
