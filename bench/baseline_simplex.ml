(* The pre-optimization solver, vendored verbatim (telemetry swapped
   for a local pivot counter) so `bench -- perf` measures the real
   before/after: nested `float array array` tableau, Bland's rule, no
   warm starts. Kept only as the perf baseline — production code uses
   Lemur_lp.Simplex. *)

type result =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

let pivots = ref 0

let pivot tab cost basis ~row ~col =
  let ncols = Array.length cost - 1 in
  let piv = tab.(row).(col) in
  for j = 0 to ncols do
    tab.(row).(j) <- tab.(row).(j) /. piv
  done;
  Array.iteri
    (fun i r ->
      if i <> row && Float.abs r.(col) > 0.0 then begin
        let f = r.(col) in
        for j = 0 to ncols do
          r.(j) <- r.(j) -. (f *. tab.(row).(j))
        done
      end)
    tab;
  let f = cost.(col) in
  if Float.abs f > 0.0 then
    for j = 0 to ncols do
      cost.(j) <- cost.(j) -. (f *. tab.(row).(j))
    done;
  basis.(row) <- col

let minimize tab cost basis allowed =
  let m = Array.length tab in
  let ncols = Array.length cost - 1 in
  let rec iterate () =
    let entering = ref (-1) in
    (try
       for j = 0 to ncols - 1 do
         if allowed.(j) && cost.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let leave = ref (-1) and best = ref infinity in
      for i = 0 to m - 1 do
        if tab.(i).(col) > eps then begin
          let ratio = tab.(i).(ncols) /. tab.(i).(col) in
          if
            ratio < !best -. eps
            || (ratio < !best +. eps && (!leave < 0 || basis.(i) < basis.(!leave)))
          then begin
            best := ratio;
            leave := i
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot tab cost basis ~row:!leave ~col;
        incr pivots;
        iterate ()
      end
    end
  in
  iterate ()

let solve ~c ~a ~b =
  let m = Array.length b in
  let n = Array.length c in
  let neg_rows = ref [] in
  for i = 0 to m - 1 do
    if b.(i) < 0.0 then neg_rows := i :: !neg_rows
  done;
  let nart = List.length !neg_rows in
  let ncols = n + m + nart in
  let tab = Array.make_matrix m (ncols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let art_of_row = Hashtbl.create 8 in
  List.iteri (fun k i -> Hashtbl.add art_of_row i (n + m + k)) !neg_rows;
  for i = 0 to m - 1 do
    let sign = if b.(i) < 0.0 then -1.0 else 1.0 in
    for j = 0 to n - 1 do
      tab.(i).(j) <- sign *. a.(i).(j)
    done;
    tab.(i).(n + i) <- sign;
    tab.(i).(ncols) <- sign *. b.(i);
    match Hashtbl.find_opt art_of_row i with
    | Some acol ->
        tab.(i).(acol) <- 1.0;
        basis.(i) <- acol
    | None -> basis.(i) <- n + i
  done;
  let allowed = Array.make ncols true in
  let outcome_phase1 =
    if nart = 0 then `Optimal
    else begin
      let cost1 = Array.make (ncols + 1) 0.0 in
      Hashtbl.iter (fun _ acol -> cost1.(acol) <- 1.0) art_of_row;
      for i = 0 to m - 1 do
        if basis.(i) >= n + m then
          for j = 0 to ncols do
            cost1.(j) <- cost1.(j) -. tab.(i).(j)
          done
      done;
      match minimize tab cost1 basis allowed with
      | `Unbounded -> `Unbounded
      | `Optimal ->
          let scale =
            Array.fold_left (fun acc bi -> Float.max acc (Float.abs bi)) 1.0 b
          in
          if -.cost1.(ncols) > 1e-7 *. scale then `Infeasible
          else begin
            for i = 0 to m - 1 do
              if basis.(i) >= n + m then begin
                let piv_col = ref (-1) in
                (try
                   for j = 0 to (n + m) - 1 do
                     if Float.abs tab.(i).(j) > eps then begin
                       piv_col := j;
                       raise Exit
                     end
                   done
                 with Exit -> ());
                if !piv_col >= 0 then
                  pivot tab (Array.make (ncols + 1) 0.0) basis ~row:i ~col:!piv_col
              end
            done;
            for j = n + m to ncols - 1 do
              allowed.(j) <- false
            done;
            `Optimal
          end
    end
  in
  match outcome_phase1 with
  | `Infeasible -> Infeasible
  | `Unbounded -> Unbounded
  | `Optimal -> (
      let cost2 = Array.make (ncols + 1) 0.0 in
      for j = 0 to n - 1 do
        cost2.(j) <- -.c.(j)
      done;
      for i = 0 to m - 1 do
        let bc = basis.(i) in
        if bc < n && Float.abs cost2.(bc) > 0.0 then begin
          let f = cost2.(bc) in
          for j = 0 to ncols do
            cost2.(j) <- cost2.(j) -. (f *. tab.(i).(j))
          done
        end
      done;
      match minimize tab cost2 basis allowed with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let solution = Array.make n 0.0 in
          for i = 0 to m - 1 do
            if basis.(i) < n then solution.(basis.(i)) <- tab.(i).(ncols)
          done;
          let objective =
            Array.to_list solution
            |> List.mapi (fun j x -> c.(j) *. x)
            |> List.fold_left ( +. ) 0.0
          in
          Optimal { objective; solution })
