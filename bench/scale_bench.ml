(* The datacenter-scale bench behind `dune exec bench/main.exe -- scale`:
   builds a synthetic spine/leaf fabric, expands a tenant population
   into thousands of chain demands, runs the sharded placer twice —
   sequentially (-j 1) and fanned out over N pool domains — and gates
   three properties into BENCH_scale.json:

   - determinism (hard gate): the fabric-placement digest at -j N must
     be byte-identical to -j 1;
   - correctness (hard gate): the -j N placement must pass the
     fabric-level oracle (Lemur_check.Fabric_check) — every shard
     oracle-clean, uplink budgets respected, no unbudgeted cross-rack
     chain;
   - wall clock (hard gate): the parallel run must finish within
     --budget-s seconds. The default scenario is the ROADMAP target —
     50 racks / 2000 chains; --quick shrinks it to 4 racks / 64 chains
     for CI smoke.

   Wall-clock budgets are generous (the gate catches order-of-magnitude
   regressions, not noise); the JSON records the honest timing either
   way. *)

module Fabric = Lemur_topology.Fabric
module Shard = Lemur_placer.Shard
module Fabric_check = Lemur_check.Fabric_check
module Pool = Lemur_util.Pool
module Json = Lemur_telemetry.Json

let now = Unix.gettimeofday

let timed_place ~jobs cfg demands =
  let t0 = now () in
  let outcome = Shard.place ~jobs cfg demands in
  let wall = Lemur_util.Timing.duration ~start:t0 ~stop:(now ()) in
  (outcome, wall)

let run_json ~jobs ~chains (fp : Shard.fabric_placement) wall =
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("wall_s", Json.Float wall);
      ( "chains_per_sec",
        Json.Float (if wall > 0.0 then float_of_int chains /. wall else 0.0) );
      ("repair_moves", Json.Int (List.length fp.Shard.repairs));
      ( "cross_rack_chains",
        Json.Int
          (List.length
             (List.filter
                (fun (a : Shard.assignment) -> a.Shard.a_cross)
                fp.Shard.assignments)) );
      ("total_rate_gbps", Json.Float (fp.Shard.total_rate /. 1e9));
      ("total_marginal_gbps", Json.Float (fp.Shard.total_marginal /. 1e9));
      ("cores_used", Json.Int fp.Shard.cores_used);
      ("digest", Json.String (Shard.digest fp));
    ]

let main args =
  let racks = ref 50
  and chains = ref 2000
  and tenants = ref None
  and seed = ref 1
  and jobs = ref None
  and budget_s = ref None
  and quick = ref false
  and out = ref "BENCH_scale.json" in
  let rec parse = function
    | [] -> Ok ()
    | "--racks" :: v :: rest ->
        racks := int_of_string v;
        parse rest
    | "--chains" :: v :: rest ->
        chains := int_of_string v;
        parse rest
    | "--tenants" :: v :: rest ->
        tenants := Some (int_of_string v);
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := Some (int_of_string v);
        parse rest
    | "--budget-s" :: v :: rest ->
        budget_s := Some (float_of_string v);
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | arg :: _ -> Error arg
  in
  match parse args with
  | Error arg ->
      Printf.eprintf
        "bench scale: unknown argument %S\n\
         usage: bench -- scale [--quick] [--racks N] [--chains N] \
         [--tenants N] [--seed N] [-j N] [--budget-s X] [--out FILE]\n"
        arg;
      2
  | Ok () ->
      if !quick then begin
        racks := 4;
        chains := 64
      end;
      let tenants =
        match !tenants with Some t -> t | None -> max 4 (2 * !racks)
      in
      let budget =
        match !budget_s with
        | Some b -> b
        | None -> if !quick then 60.0 else 300.0
      in
      let jobs =
        match !jobs with
        | Some j -> max 1 j
        | None -> max 2 (Pool.recommended_domains ())
      in
      let fabric = Fabric.synthetic ~racks:!racks () in
      let demands =
        Fabric.expand
          (Fabric.synthetic_tenants ~seed:!seed ~tenants ~chains:!chains
             fabric)
      in
      let cfg = Shard.default_config fabric in
      Printf.printf
        "## scale: %d rack(s) (%d NF cores), %d tenant(s) -> %d chain(s), \
         %.1f Gbps aggregate floor, -j 1 vs -j %d (host reports %d domain(s))\n\
         %!"
        !racks
        (Fabric.total_nf_cores fabric)
        tenants (List.length demands)
        (Fabric.total_demand demands /. 1e9)
        jobs
        (Pool.recommended_domains ());
      let seq, seq_wall = timed_place ~jobs:1 cfg demands in
      let par, par_wall = timed_place ~jobs cfg demands in
      let report label outcome wall =
        match (outcome : Shard.outcome) with
        | Shard.Infeasible { errors; repairs } ->
            Printf.printf "  %s: INFEASIBLE after %.2fs (%d repair move(s)):\n"
              label wall (List.length repairs);
            List.iter
              (fun e -> Printf.printf "    %s\n" (Shard.error_to_string e))
              errors;
            None
        | Shard.Placed fp ->
            Printf.printf
              "  %s: %.2fs, %d repair move(s), %d cross-rack, digest %s\n%!"
              label wall
              (List.length fp.Shard.repairs)
              (List.length
                 (List.filter
                    (fun (a : Shard.assignment) -> a.Shard.a_cross)
                    fp.Shard.assignments))
              (Shard.digest fp);
            Some fp
      in
      let seq_fp = report "-j 1" seq seq_wall in
      let par_fp = report (Printf.sprintf "-j %d" jobs) par par_wall in
      (match (seq_fp, par_fp) with
      | Some _, Some _ | None, None -> ()
      | _ -> Printf.printf "  FEASIBILITY MISMATCH between job counts\n");
      let digests_equal =
        match (seq_fp, par_fp) with
        | Some a, Some b -> String.equal (Shard.digest a) (Shard.digest b)
        | None, None -> true (* both infeasible: the infeasibility gate fires *)
        | _ -> false
      in
      let oracle_violations =
        match par_fp with
        | None -> [ "placement infeasible" ]
        | Some fp -> (
            match Fabric_check.check fp with
            | Ok () -> []
            | Error vs ->
                List.map
                  (fun v -> Format.asprintf "%a" Fabric_check.pp_violation v)
                  vs)
      in
      let within_budget = par_wall <= budget in
      Printf.printf "determinism: %s\n"
        (if digests_equal then "ok, digests identical" else "DIGEST MISMATCH");
      (match oracle_violations with
      | [] -> Printf.printf "oracle: clean\n"
      | vs ->
          Printf.printf "oracle: %d VIOLATION(S)\n" (List.length vs);
          List.iteri
            (fun i v -> if i < 10 then Printf.printf "  %s\n" v)
            vs);
      Printf.printf "wall clock: %.2fs (budget %.0fs: %s)\n" par_wall budget
        (if within_budget then "ok" else "EXCEEDED");
      let doc =
        Json.Obj
          [
            ("schema", Json.String "lemur.bench.scale/1");
            ("seed", Json.Int !seed);
            ("racks", Json.Int !racks);
            ("tenants", Json.Int tenants);
            ("chains", Json.Int (List.length demands));
            ("fabric_nf_cores", Json.Int (Fabric.total_nf_cores fabric));
            ( "aggregate_floor_gbps",
              Json.Float (Fabric.total_demand demands /. 1e9) );
            ("host_domains", Json.Int (Pool.recommended_domains ()));
            ( "sequential",
              match seq_fp with
              | Some fp ->
                  run_json ~jobs:1 ~chains:(List.length demands) fp seq_wall
              | None -> Json.Obj [ ("infeasible", Json.Bool true) ] );
            ( "parallel",
              match par_fp with
              | Some fp ->
                  run_json ~jobs ~chains:(List.length demands) fp par_wall
              | None -> Json.Obj [ ("infeasible", Json.Bool true) ] );
            ("digests_equal", Json.Bool digests_equal);
            ( "oracle_clean",
              Json.Bool (oracle_violations = []) );
            ("budget_s", Json.Float budget);
            ("within_budget", Json.Bool within_budget);
          ]
      in
      let oc = open_out !out in
      output_string oc (Json.to_string doc);
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s\n" !out;
      if
        digests_equal && oracle_violations = [] && within_budget
        && par_fp <> None
      then 0
      else 1
