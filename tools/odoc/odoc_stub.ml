(* Minimal odoc replacement for toolchains without odoc.

   Dune's @doc rules shell out to an `odoc` program for four jobs:
   compiling .cmt/.cmti/.mld files to .odoc, linking .odoc to .odocl,
   generating HTML, and copying support files (CSS).  This stub
   performs the same file-level contract — every `-o` target is
   created — without actually understanding the compiled interfaces,
   so the build graph completes and the HTML tree exists, just with
   placeholder pages.  Swap in the real odoc for proper output. *)

let version = "2.4.4"

(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write_file path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Pull the value following a flag out of the argument list. *)
let flag_value flag args =
  let rec go = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go args

(* The positional input file: the last argument that exists on disk
   and is not itself the value of a -o/--output-dir style flag. *)
let input_file args =
  let rec go prev = function
    | [] -> None
    | a :: rest ->
        let is_flag_value =
          match prev with
          | Some p -> List.mem p [ "-o"; "--output-dir"; "-I"; "--parent"; "--parent-id" ]
          | None -> false
        in
        if (not is_flag_value) && String.length a > 0 && a.[0] <> '-' && Sys.file_exists a
        then (match go (Some a) rest with Some x -> Some x | None -> Some a)
        else go (Some a) rest
  in
  go None args

(* "Odoc_stub.cmti" -> "Odoc_stub"; "page-index.mld" stays as is. *)
let module_of path = Filename.remove_extension (Filename.basename path)

let html_page_body title =
  Printf.sprintf
    "<!DOCTYPE html>\n\
     <html><head><meta charset=\"utf-8\"/><title>%s</title>\n\
     <link rel=\"stylesheet\" href=\"../odoc.css\"/></head>\n\
     <body><main><h1>%s</h1>\n\
     <p>Placeholder page produced by the vendored odoc stub. Install the\n\
     real <code>odoc</code> and rerun <code>dune build @doc</code> for\n\
     rendered interface documentation; meanwhile the authoritative text\n\
     lives in the library's <code>.mli</code> files.</p>\n\
     </main></body></html>\n"
    title title

(* ------------------------------------------------------------------ *)

let compile args =
  (* Produce the .odoc target.  Its only consumer is this same stub,
     so the payload is just the source path for traceability. *)
  let out =
    match flag_value "-o" args with
    | Some o -> o
    | None -> (
        match input_file args with
        | Some i -> Filename.remove_extension i ^ ".odoc"
        | None -> failwith "compile: no -o and no input file")
  in
  let src = match input_file args with Some i -> i | None -> "(unknown)" in
  write_file out (Printf.sprintf "odoc-stub compile of %s\n" src)

let link args =
  let out =
    match flag_value "-o" args with
    | Some o -> o
    | None -> (
        match input_file args with
        | Some i -> Filename.remove_extension i ^ ".odocl"
        | None -> failwith "link: no -o and no input file")
  in
  let src = match input_file args with Some i -> i | None -> "(unknown)" in
  write_file out (Printf.sprintf "odoc-stub link of %s\n" src)

(* Dune may ask where the HTML for a unit will land (html-targets) and
   then require html-generate to create exactly those files.  Keeping
   both code paths derived from the same [targets_of] keeps the two
   answers consistent. *)
let targets_of args =
  let out = Option.value (flag_value "-o" args) ~default:"." in
  match input_file args with
  | None -> []
  | Some i ->
      (* ../_odocls/<pkg>/<unit>.odocl renders under <out>/<pkg>/:
         pages as <pkg>/<name>.html, modules (capitalized, as odoc
         names compilation units) as <pkg>/<Module>/index.html. *)
      let pkg = Filename.basename (Filename.dirname i) in
      let m = module_of i in
      if String.length m > 5 && String.sub m 0 5 = "page-" then
        [
          Filename.concat out
            (Filename.concat pkg (String.sub m 5 (String.length m - 5) ^ ".html"));
        ]
      else
        [
          Filename.concat out
            (Filename.concat pkg
               (Filename.concat (String.capitalize_ascii m) "index.html"));
        ]

let html_targets args = List.iter print_endline (targets_of args)

let html_generate args =
  List.iter
    (fun t -> write_file t (html_page_body (module_of (Filename.dirname t))))
    (targets_of args)

let support_files args =
  let out = Option.value (flag_value "-o" args) ~default:"." in
  write_file (Filename.concat out "odoc.css")
    "/* placeholder stylesheet from the vendored odoc stub */\n";
  write_file (Filename.concat out "highlight.pack.js")
    "/* placeholder highlighter from the vendored odoc stub */\n"

let compile_deps _args =
  (* Real odoc prints "Unit digest" lines used for fine-grained rule
     deps; printing nothing degrades to coarser deps, which is fine. *)
  ()

let () =
  match Array.to_list Sys.argv with
  | _ :: "--version" :: _ | _ :: "version" :: _ -> print_endline version
  | _ :: "compile" :: args -> compile args
  | _ :: "link" :: args -> link args
  | _ :: "html-generate" :: args -> html_generate args
  | _ :: "html-targets" :: args -> html_targets args
  | _ :: "support-files" :: args -> support_files args
  | _ :: "compile-deps" :: args -> compile_deps args
  | _ :: "css" :: args -> support_files args
  | _ :: cmd :: _ ->
      (* Unknown subcommand: succeed quietly so future dune versions
         probing for optional features don't break the build. *)
      Printf.eprintf "odoc-stub: ignoring unsupported subcommand %S\n" cmd
  | _ -> print_endline version
