let () =
  Alcotest.run "lemur"
    [
      ("util", Test_util.suite);
      ("lp", Test_lp.suite);
      ("nf", Test_nf.suite);
      ("classifier", Test_classifier.suite);
      ("spec", Test_spec.suite);
      ("slo", Test_slo.suite);
      ("platform", Test_platform.suite);
      ("profiler", Test_profiler.suite);
      ("nsh", Test_nsh.suite);
      ("p4", Test_p4.suite);
      ("ebpf", Test_ebpf.suite);
      ("bess", Test_bess.suite);
      ("openflow", Test_openflow.suite);
      ("placer", Test_placer.suite);
      ("alloc", Test_alloc.suite);
      ("milp", Test_milp.suite);
      ("dynamics", Test_dynamics.suite);
      ("codegen", Test_codegen.suite);
      ("dataplane", Test_dataplane.suite);
      ("check", Test_check.suite);
      ("fabric", Test_fabric.suite);
      ("runtime", Test_runtime.suite);
      ("telemetry", Test_telemetry.suite);
      ("core", Test_core.suite);
    ]
