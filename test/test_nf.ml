open Lemur_nf

let test_names_roundtrip () =
  List.iter
    (fun kind ->
      match Kind.of_name (Kind.name kind) with
      | Some k -> Alcotest.(check bool) "roundtrip" true (Kind.equal k kind)
      | None -> Alcotest.failf "no roundtrip for %s" (Kind.name kind))
    Kind.all

let test_aliases () =
  Alcotest.(check bool) "Match is BPF" true (Kind.of_name "Match" = Some Kind.Bpf);
  Alcotest.(check bool) "Encryption alias" true
    (Kind.of_name "Encryption" = Some Kind.Encrypt);
  Alcotest.(check bool) "unknown" true (Kind.of_name "Frobnicate" = None)

let test_capability_matrix () =
  (* Spot checks against Table 3. *)
  let has kind target = List.mem target (Kind.targets kind) in
  Alcotest.(check bool) "Encrypt C++ only" true
    (Kind.targets Kind.Encrypt = [ Target.Cpp ]);
  Alcotest.(check bool) "Dedup C++ only" true (Kind.targets Kind.Dedup = [ Target.Cpp ]);
  Alcotest.(check bool) "FastEncrypt has eBPF" true (has Kind.Fast_encrypt Target.Ebpf);
  Alcotest.(check bool) "FastEncrypt no P4" false (has Kind.Fast_encrypt Target.P4);
  Alcotest.(check bool) "ACL everywhere" true
    (List.for_all (has Kind.Acl) Target.all);
  Alcotest.(check bool) "NAT has P4" true (has Kind.Nat Target.P4);
  Alcotest.(check bool) "NAT no OpenFlow" false (has Kind.Nat Target.Openflow);
  Alcotest.(check bool) "Monitor has OpenFlow" true (has Kind.Monitor Target.Openflow);
  (* Eval restriction: IPv4Fwd P4-only. *)
  Alcotest.(check bool) "IPv4Fwd eval P4-only" true
    (Kind.targets_eval Kind.Ipv4_fwd = [ Target.P4 ]);
  Alcotest.(check bool) "IPv4Fwd real matrix is full" true
    (List.length (Kind.targets Kind.Ipv4_fwd) = 4)

let test_replicability () =
  Alcotest.(check bool) "Limiter not replicable" false (Kind.replicable Kind.Limiter);
  Alcotest.(check bool) "Monitor not replicable" false (Kind.replicable Kind.Monitor);
  (* §5.3: Lemur "replicates Dedup on two cores" — Dedup must be replicable. *)
  Alcotest.(check bool) "Dedup replicable" true (Kind.replicable Kind.Dedup);
  Alcotest.(check int) "exactly two non-replicable NFs" 2
    (List.length (List.filter (fun k -> not (Kind.replicable k)) Kind.all))

let test_datasheet_table4 () =
  let check_cost kind numa expected_mean =
    let c = Datasheet.cycle_cost kind numa in
    Alcotest.(check (float 0.5)) "mean" expected_mean c.Datasheet.mean;
    Alcotest.(check bool) "min <= mean <= max" true
      (c.Datasheet.min <= c.Datasheet.mean && c.Datasheet.mean <= c.Datasheet.max)
  in
  check_cost Kind.Encrypt Datasheet.Same 8593.;
  check_cost Kind.Encrypt Datasheet.Diff 8950.;
  check_cost Kind.Dedup Datasheet.Same 30182.;
  check_cost Kind.Nat Datasheet.Diff 496.;
  check_cost Kind.Acl Datasheet.Same 3841.

let test_datasheet_numa_penalty () =
  List.iter
    (fun kind ->
      let same = Datasheet.cycle_cost kind Datasheet.Same in
      let diff = Datasheet.cycle_cost kind Datasheet.Diff in
      Alcotest.(check bool)
        (Printf.sprintf "%s diff-NUMA costs more" (Kind.name kind))
        true
        (diff.Datasheet.mean > same.Datasheet.mean))
    Kind.all

let test_datasheet_sized () =
  (* Larger ACL tables cost more; reference size reproduces Table 4. *)
  let ref_cost = Datasheet.cycle_cost Kind.Acl Datasheet.Same in
  let at n = Datasheet.cycle_cost_sized Kind.Acl Datasheet.Same ~size:n in
  Alcotest.(check (float 1e-9)) "reference size" ref_cost.Datasheet.mean
    (at 1024).Datasheet.mean;
  Alcotest.(check bool) "bigger table costs more" true
    ((at 4096).Datasheet.mean > ref_cost.Datasheet.mean);
  Alcotest.(check bool) "smaller table costs less" true
    ((at 16).Datasheet.mean < ref_cost.Datasheet.mean);
  (* Size-independent NF ignores the size. *)
  let e = Datasheet.cycle_cost Kind.Encrypt Datasheet.Same in
  Alcotest.(check (float 1e-9)) "encrypt unaffected" e.Datasheet.mean
    (Datasheet.cycle_cost_sized Kind.Encrypt Datasheet.Same ~size:5).Datasheet.mean

let test_ebpf_data () =
  Alcotest.(check bool) "ChaCha speedup > 10x" true
    (Datasheet.ebpf_speedup Kind.Fast_encrypt > 10.0);
  Alcotest.(check int) "Encrypt has no eBPF" 0
    (Datasheet.ebpf_instruction_estimate Kind.Encrypt);
  Alcotest.(check bool) "ChaCha fits the 4096-insn budget era" true
    (Datasheet.ebpf_instruction_estimate Kind.Fast_encrypt < 4096)

let test_p4_tables () =
  Alcotest.(check int) "NAT uses 2 tables" 2 (Datasheet.p4_table_count Kind.Nat);
  Alcotest.(check int) "ACL uses 1 table" 1 (Datasheet.p4_table_count Kind.Acl);
  Alcotest.(check int) "Dedup has no P4 impl" 0 (Datasheet.p4_table_count Kind.Dedup)

let test_instance_params () =
  let acl =
    Instance.make ~name:"acl0"
      ~params:
        [
          ( "rules",
            Params.List
              [
                Params.Dict
                  [ ("dst_ip", Params.Str "10.0.0.0/8"); ("drop", Params.Bool false) ];
                Params.Dict [ ("dst_ip", Params.Str "0.0.0.0/0"); ("drop", Params.Bool true) ];
              ] );
        ]
      Kind.Acl
  in
  Alcotest.(check (option int)) "table size from rules list" (Some 2)
    (Instance.state_size acl);
  let nat = Instance.make ~params:[ ("entries", Params.Int 12000) ] Kind.Nat in
  Alcotest.(check (option int)) "NAT entries" (Some 12000) (Instance.state_size nat);
  let enc = Instance.make Kind.Encrypt in
  Alcotest.(check (option int)) "no size param" None (Instance.state_size enc);
  Alcotest.(check string) "default name" "Encrypt" enc.Instance.name

let test_table_size_forms () =
  (* ACL accepts both a literal rule list and an integer count. *)
  let by_count = Instance.make ~params:[ ("rules", Params.Int 4096) ] Kind.Acl in
  Alcotest.(check (option int))
    "count form" (Some 4096) (Instance.state_size by_count);
  let by_list =
    Instance.make
      ~params:
        [ ("rules", Params.List [ Params.Str "a"; Params.Str "b"; Params.Str "c" ]) ]
      Kind.Acl
  in
  Alcotest.(check (option int))
    "list form" (Some 3) (Instance.state_size by_list);
  let zero = Instance.make ~params:[ ("rules", Params.Int 0) ] Kind.Acl in
  Alcotest.(check (option int)) "zero is legal" (Some 0) (Instance.state_size zero);
  (* Wrong key or wrong type: ignored, not an error. *)
  let wrong = Instance.make ~params:[ ("rules", Params.Str "lots") ] Kind.Acl in
  Alcotest.(check (option int)) "non-count ignored" None (Instance.state_size wrong)

let test_table_size_negative () =
  let bad = Instance.make ~params:[ ("rules", Params.Int (-5)) ] Kind.Acl in
  (match Instance.state_size bad with
  | exception Params.Invalid_size { key; value } ->
      Alcotest.(check string) "key" "rules" key;
      Alcotest.(check int) "value" (-5) value
  | _ -> Alcotest.fail "negative rule count must raise Invalid_size");
  let bad_nat = Instance.make ~params:[ ("entries", Params.Int (-1)) ] Kind.Nat in
  (match Instance.state_size bad_nat with
  | exception Params.Invalid_size { key; value = -1 } ->
      Alcotest.(check string) "nat key" "entries" key
  | _ -> Alcotest.fail "negative NAT entries must raise Invalid_size");
  (* End to end: building a graph around such an instance is a typed
     spec error, not a crash deep in a cost model. *)
  let pipeline =
    [ Lemur_spec.Ast.Atom { Lemur_spec.Ast.ref_name = "bad"; args = None } ]
  in
  match Lemur_spec.Graph.of_pipeline ~decls:[ ("bad", bad) ] pipeline with
  | exception Lemur_spec.Graph.Invalid msg ->
      let mentions_key =
        let sub = "rules" in
        let n = String.length sub and m = String.length msg in
        let rec scan i =
          i + n <= m && (String.sub msg i n = sub || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) "message names the parameter" true mentions_key
  | _ -> Alcotest.fail "graph with negative rule count must be rejected"

let test_params_pp () =
  let v =
    Params.Dict [ ("dst_ip", Params.Str "10.0.0.0/8"); ("drop", Params.Bool false) ]
  in
  Alcotest.(check string) "python-style" "{'dst_ip': '10.0.0.0/8', 'drop': False}"
    (Format.asprintf "%a" Params.pp_value v)

let suite =
  [
    Alcotest.test_case "kind name roundtrip" `Quick test_names_roundtrip;
    Alcotest.test_case "kind aliases" `Quick test_aliases;
    Alcotest.test_case "capability matrix (Table 3)" `Quick test_capability_matrix;
    Alcotest.test_case "replicability" `Quick test_replicability;
    Alcotest.test_case "datasheet Table 4 values" `Quick test_datasheet_table4;
    Alcotest.test_case "datasheet NUMA penalty" `Quick test_datasheet_numa_penalty;
    Alcotest.test_case "datasheet size model" `Quick test_datasheet_sized;
    Alcotest.test_case "eBPF data" `Quick test_ebpf_data;
    Alcotest.test_case "P4 table counts" `Quick test_p4_tables;
    Alcotest.test_case "instance params" `Quick test_instance_params;
    Alcotest.test_case "table size count and list forms" `Quick
      test_table_size_forms;
    Alcotest.test_case "negative table size rejected" `Quick
      test_table_size_negative;
    Alcotest.test_case "params pretty-printing" `Quick test_params_pp;
  ]
