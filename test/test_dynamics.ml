(* Tests for deployment dynamics and failure handling (§7). *)
open Lemur_placer

let config () = Plan.default_config (Lemur_topology.Topology.testbed ())

let base_deployment () =
  let c = config () in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 2; 3 ] in
  match Lemur.Deployment.deploy c inputs with
  | Ok d -> d
  | Error e -> Alcotest.failf "base deployment failed: %s" e

let rate_of d id =
  let r =
    List.find
      (fun r -> r.Strategy.plan.Plan.input.Plan.id = id)
      d.Lemur.Deployment.placement.Strategy.chain_reports
  in
  r.Strategy.rate

let test_slo_change_replaces () =
  let d = base_deployment () in
  let new_slo = Lemur_slo.Slo.make ~t_min:(Lemur_util.Units.gbps 1.2) ~t_max:(Lemur_util.Units.gbps 100.0) () in
  match
    Lemur.Dynamics.apply d
      (Lemur.Dynamics.Slo_changed { chain_id = "chain3"; slo = new_slo })
  with
  | Error e -> Alcotest.failf "apply failed: %s" e
  | Ok d' ->
      Alcotest.(check bool) "chain3 now gets at least 1.2G" true
        (rate_of d' "chain3" >= 1.2e9 -. 1e3)

let test_chain_add_remove () =
  let d = base_deployment () in
  let extra =
    {
      Plan.id = "extra";
      graph = Lemur_spec.Loader.chain_of_string ~name:"extra" "Tunnel -> IPv4Fwd";
      slo = Lemur_slo.Slo.best_effort;
    }
  in
  (match Lemur.Dynamics.apply d (Lemur.Dynamics.Chain_added extra) with
  | Error e -> Alcotest.failf "add failed: %s" e
  | Ok d' ->
      Alcotest.(check int) "3 chains" 3
        (List.length d'.Lemur.Deployment.placement.Strategy.chain_reports);
      (* removing it returns to 2 *)
      match Lemur.Dynamics.apply d' (Lemur.Dynamics.Chain_removed "extra") with
      | Error e -> Alcotest.failf "remove failed: %s" e
      | Ok d'' ->
          Alcotest.(check int) "back to 2 chains" 2
            (List.length d''.Lemur.Deployment.placement.Strategy.chain_reports));
  (* error paths *)
  (match Lemur.Dynamics.apply d (Lemur.Dynamics.Chain_added extra) with
  | Ok d' -> (
      match Lemur.Dynamics.apply d' (Lemur.Dynamics.Chain_added extra) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "duplicate add must fail")
  | Error e -> Alcotest.failf "add failed: %s" e);
  match Lemur.Dynamics.apply d (Lemur.Dynamics.Chain_removed "ghost") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "removing unknown chain must fail"

let test_infeasible_slo_change_reported () =
  let d = base_deployment () in
  let impossible =
    Lemur_slo.Slo.make ~t_min:(Lemur_util.Units.gbps 90.0) ~t_max:(Lemur_util.Units.gbps 100.0) ()
  in
  match
    Lemur.Dynamics.apply d
      (Lemur.Dynamics.Slo_changed { chain_id = "chain3"; slo = impossible })
  with
  | Error _ -> () (* 90G of Dedup does not fit one server *)
  | Ok _ -> Alcotest.fail "expected infeasible"

let test_schedule () =
  let c = config () in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 2; 3 ] in
  let window label factor =
    {
      Lemur.Dynamics.Schedule.label;
      slos =
        List.map
          (fun i ->
            ( i.Plan.id,
              Lemur_slo.Slo.make
                ~t_min:(i.Plan.slo.Lemur_slo.Slo.t_min *. factor)
                ~t_max:i.Plan.slo.Lemur_slo.Slo.t_max () ))
          inputs;
    }
  in
  match
    Lemur.Dynamics.Schedule.precompute c inputs [ window "peak" 2.0; window "off-peak" 0.5 ]
  with
  | Error e -> Alcotest.failf "precompute failed: %s" e
  | Ok schedule ->
      Alcotest.(check (list string)) "labels" [ "peak"; "off-peak" ]
        (Lemur.Dynamics.Schedule.labels schedule);
      let peak = Option.get (Lemur.Dynamics.Schedule.deployment schedule "peak") in
      let off = Option.get (Lemur.Dynamics.Schedule.deployment schedule "off-peak") in
      (* each window's placement honours its own (scaled) guarantees *)
      let meets d factor =
        List.for_all
          (fun i -> rate_of d i.Plan.id >= (factor *. i.Plan.slo.Lemur_slo.Slo.t_min) -. 1e3)
          inputs
      in
      Alcotest.(check bool) "peak window meets 2x guarantees" true (meets peak 2.0);
      Alcotest.(check bool) "off-peak meets 0.5x guarantees" true (meets off 0.5);
      Alcotest.(check bool) "unknown label" true
        (Lemur.Dynamics.Schedule.deployment schedule "night" = None)

let test_pisa_failure_no_fallback () =
  (* Under the evaluation capability matrix IPv4Fwd is P4-only, so chain
     3 has no software fallback when the PISA pipeline dies: the failure
     must be reported, not silently papered over. *)
  let c = config () in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.25 [ 3 ] in
  match Lemur.Deployment.deploy c inputs with
  | Error e -> Alcotest.failf "primary failed: %s" e
  | Ok d -> (
      match Lemur.Failover.react d Lemur.Failover.Pisa_failed with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "P4-only IPv4Fwd cannot survive a PISA failure")

let test_pisa_failure_with_real_matrix () =
  let topo = Lemur_topology.Topology.testbed () in
  let c = { (Plan.default_config topo) with Plan.eval_capabilities = false } in
  let g = Lemur_spec.Loader.chain_of_string ~name:"c" "ACL -> NAT -> IPv4Fwd" in
  let inputs =
    [ { Plan.id = "c"; graph = g; slo = Lemur_slo.Slo.make ~t_min:1e9 ~t_max:100e9 () } ]
  in
  match Lemur.Deployment.deploy c inputs with
  | Error e -> Alcotest.failf "primary failed: %s" e
  | Ok d -> (
      let primary_on_switch =
        List.exists
          (fun r -> Array.exists (fun l -> l = Plan.Switch) r.Strategy.plan.Plan.locs)
          d.Lemur.Deployment.placement.Strategy.chain_reports
      in
      Alcotest.(check bool) "primary uses the switch" true primary_on_switch;
      match Lemur.Failover.react d Lemur.Failover.Pisa_failed with
      | Error e -> Alcotest.failf "failover failed: %s" e
      | Ok d' ->
          List.iter
            (fun r ->
              Alcotest.(check bool) "all NFs off the switch" true
                (Array.for_all (fun l -> l <> Plan.Switch) r.Strategy.plan.Plan.locs))
            d'.Lemur.Deployment.placement.Strategy.chain_reports)

let test_server_failure () =
  let topo = Lemur_topology.Topology.testbed ~num_servers:2 ~cores_per_socket:4 () in
  let c = Plan.default_config topo in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 2; 3 ] in
  match Lemur.Deployment.deploy c inputs with
  | Error e -> Alcotest.failf "primary failed: %s" e
  | Ok d -> (
      match Lemur.Failover.react d (Lemur.Failover.Server_failed "server1") with
      | Error e -> Alcotest.failf "failover failed: %s" e
      | Ok d' ->
          List.iter
            (fun r ->
              List.iter
                (fun (_, server) ->
                  Alcotest.(check string) "everything on server0" "server0" server)
                r.Strategy.seg_server)
            d'.Lemur.Deployment.placement.Strategy.chain_reports)

let test_degrade_errors () =
  let topo = Lemur_topology.Topology.testbed () in
  (match Lemur.Failover.degrade topo Lemur.Failover.Smartnic_failed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no smartnic to fail");
  (match Lemur.Failover.degrade topo (Lemur.Failover.Server_failed "server0") with
  | Error _ -> () (* last server *)
  | Ok _ -> Alcotest.fail "last server cannot fail");
  match Lemur.Failover.degrade topo (Lemur.Failover.Server_failed "ghost") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown server"

let test_proactive () =
  let topo = Lemur_topology.Topology.testbed ~smartnic:true () in
  let c = Plan.default_config topo in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 5 ] in
  match Lemur.Failover.proactive c inputs [ Lemur.Failover.Smartnic_failed ] with
  | Error e -> Alcotest.failf "proactive failed: %s" e
  | Ok (primary, fallbacks) ->
      Alcotest.(check int) "one fallback" 1 (List.length fallbacks);
      let _, fb = List.hd fallbacks in
      (* primary offloads ChaCha to the NIC; fallback keeps it on cores *)
      let uses_nic d =
        List.exists
          (fun r -> r.Strategy.plan.Plan.smartnic_nodes <> [])
          d.Lemur.Deployment.placement.Strategy.chain_reports
      in
      Alcotest.(check bool) "primary uses the NIC" true (uses_nic primary);
      Alcotest.(check bool) "fallback avoids the NIC" false (uses_nic fb)

let oracle_ok d =
  match Lemur_check.Oracle.check_deployment d with
  | Ok () -> true
  | Error vs ->
      Fmt.epr "oracle rejected: %a@."
        (Fmt.list ~sep:Fmt.comma Lemur_check.Oracle.pp_violation)
        vs;
      false

let extra_input () =
  {
    Plan.id = "extra";
    graph = Lemur_spec.Loader.chain_of_string ~name:"extra" "Tunnel -> IPv4Fwd";
    slo = Lemur_slo.Slo.best_effort;
  }

let test_apply_batch_equivalent () =
  let d = base_deployment () in
  let slo =
    Lemur_slo.Slo.make ~t_min:(Lemur_util.Units.gbps 1.2)
      ~t_max:(Lemur_util.Units.gbps 100.0) ()
  in
  let events =
    [
      Lemur.Dynamics.Slo_changed { chain_id = "chain3"; slo };
      Lemur.Dynamics.Chain_added (extra_input ());
    ]
  in
  let sequential =
    List.fold_left
      (fun acc ev -> Result.bind acc (fun d -> Lemur.Dynamics.apply d ev))
      (Ok d) events
  in
  match (sequential, Lemur.Dynamics.apply_batch d events) with
  | Ok ds, Ok db ->
      Alcotest.(check int) "same chain count"
        (List.length ds.Lemur.Deployment.placement.Strategy.chain_reports)
        (List.length db.Lemur.Deployment.placement.Strategy.chain_reports);
      Alcotest.(check bool) "batch honours the new guarantee" true
        (rate_of db "chain3" >= 1.2e9 -. 1e3)
  | Error e, _ -> Alcotest.failf "sequential failed: %s" e
  | _, Error e -> Alcotest.failf "batch failed: %s" e

let test_apply_batch_skips_intermediates () =
  (* A batch only places the *final* chain set, so a sequence whose
     intermediate states are infeasible still succeeds. *)
  let d = base_deployment () in
  let huge =
    {
      Plan.id = "huge";
      graph = Lemur_spec.Loader.chain_of_string ~name:"huge" "Dedup";
      slo =
        Lemur_slo.Slo.make ~t_min:(Lemur_util.Units.gbps 90.0)
          ~t_max:(Lemur_util.Units.gbps 100.0) ();
    }
  in
  (match Lemur.Dynamics.apply d (Lemur.Dynamics.Chain_added huge) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "90G Dedup alone must be infeasible");
  match
    Lemur.Dynamics.apply_batch d
      [ Lemur.Dynamics.Chain_added huge; Lemur.Dynamics.Chain_removed "huge" ]
  with
  | Error e -> Alcotest.failf "add-then-remove batch failed: %s" e
  | Ok d' ->
      Alcotest.(check int) "net chain set unchanged" 2
        (List.length d'.Lemur.Deployment.placement.Strategy.chain_reports)

let test_apply_batch_names_offender () =
  let d = base_deployment () in
  match
    Lemur.Dynamics.apply_batch d
      [
        Lemur.Dynamics.Chain_added (extra_input ());
        Lemur.Dynamics.Chain_removed "ghost";
      ]
  with
  | Ok _ -> Alcotest.fail "removal of unknown chain must fail"
  | Error e ->
      let has_prefix =
        String.length e >= 7 && String.equal (String.sub e 0 7) "event 2"
      in
      Alcotest.(check bool) ("offender named in: " ^ e) true has_prefix

let test_recover_smartnic () =
  let topo = Lemur_topology.Topology.testbed ~smartnic:true () in
  let c = Plan.default_config topo in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 5 ] in
  match Lemur.Deployment.deploy c inputs with
  | Error e -> Alcotest.failf "primary failed: %s" e
  | Ok d -> (
      (* recovering a live element is an error *)
      (match Lemur.Failover.recover ~reference:topo d Lemur.Failover.Smartnic_failed with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "smartnic has not failed yet");
      match Lemur.Failover.react d Lemur.Failover.Smartnic_failed with
      | Error e -> Alcotest.failf "failover failed: %s" e
      | Ok d_deg -> (
          Alcotest.(check int) "degraded rack has no nic" 0
            (List.length
               d_deg.Lemur.Deployment.config.Plan.topology
                 .Lemur_topology.Topology.smartnics);
          match
            Lemur.Failover.recover ~reference:topo d_deg
              Lemur.Failover.Smartnic_failed
          with
          | Error e -> Alcotest.failf "recover failed: %s" e
          | Ok d_rec ->
              Alcotest.(check int) "nic restored" 1
                (List.length
                   d_rec.Lemur.Deployment.config.Plan.topology
                     .Lemur_topology.Topology.smartnics);
              Alcotest.(check bool) "recovered placement passes the oracle" true
                (oracle_ok d_rec)))

let test_recover_server_brings_its_nic () =
  let topo = Lemur_topology.Topology.testbed ~num_servers:2 ~smartnic:true () in
  let c = Plan.default_config topo in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 2; 3 ] in
  match Lemur.Deployment.deploy c inputs with
  | Error e -> Alcotest.failf "primary failed: %s" e
  | Ok d -> (
      match Lemur.Failover.react d (Lemur.Failover.Server_failed "server0") with
      | Error e -> Alcotest.failf "failover failed: %s" e
      | Ok d_deg -> (
          let topo_deg =
            d_deg.Lemur.Deployment.config.Plan.topology
          in
          Alcotest.(check (list string)) "server0 gone" [ "server1" ]
            (Lemur_topology.Topology.server_names topo_deg);
          Alcotest.(check int) "its nic went with it" 0
            (List.length topo_deg.Lemur_topology.Topology.smartnics);
          (match
             Lemur.Failover.recover ~reference:topo d_deg
               (Lemur.Failover.Server_failed "server9")
           with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "unknown server cannot recover");
          match
            Lemur.Failover.recover ~reference:topo d_deg
              (Lemur.Failover.Server_failed "server0")
          with
          | Error e -> Alcotest.failf "recover failed: %s" e
          | Ok d_rec ->
              let topo_rec =
                d_rec.Lemur.Deployment.config.Plan.topology
              in
              Alcotest.(check (list string)) "reference order restored"
                [ "server0"; "server1" ]
                (Lemur_topology.Topology.server_names topo_rec);
              Alcotest.(check int) "server0's nic came back" 1
                (List.length topo_rec.Lemur_topology.Topology.smartnics);
              Alcotest.(check bool) "recovered placement passes the oracle" true
                (oracle_ok d_rec)))

let test_schedule_switching () =
  let c = config () in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 2; 3 ] in
  let window label factor =
    {
      Lemur.Dynamics.Schedule.label;
      slos =
        List.map
          (fun i ->
            ( i.Plan.id,
              Lemur_slo.Slo.make
                ~t_min:(i.Plan.slo.Lemur_slo.Slo.t_min *. factor)
                ~t_max:i.Plan.slo.Lemur_slo.Slo.t_max () ))
          inputs;
    }
  in
  match
    Lemur.Dynamics.Schedule.precompute c inputs
      [ window "peak" 2.0; window "off-peak" 0.5 ]
  with
  | Error e -> Alcotest.failf "precompute failed: %s" e
  | Ok schedule ->
      (* flip back and forth: every switch lands on a precomputed
         deployment (physically the same one each visit — no re-solve)
         and every one of them passes the oracle *)
      let visit label =
        match Lemur.Dynamics.Schedule.deployment schedule label with
        | None -> Alcotest.failf "window %s missing" label
        | Some d ->
            Alcotest.(check bool)
              (label ^ " window passes the oracle")
              true (oracle_ok d);
            d
      in
      let p1 = visit "peak" in
      let o1 = visit "off-peak" in
      let p2 = visit "peak" in
      let o2 = visit "off-peak" in
      Alcotest.(check bool) "peak lookups hit the same deployment" true
        (p1 == p2);
      Alcotest.(check bool) "off-peak lookups hit the same deployment" true
        (o1 == o2);
      Alcotest.(check bool) "windows differ" true (p1 != o1)

let test_proactive_multiple_failures () =
  let topo =
    Lemur_topology.Topology.testbed ~num_servers:2 ~smartnic:true
      ~ofswitch:true ()
  in
  let c = Plan.default_config topo in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.25 [ 2; 3 ] in
  let anticipated =
    [
      Lemur.Failover.Smartnic_failed;
      Lemur.Failover.Ofswitch_failed;
      Lemur.Failover.Server_failed "server1";
    ]
  in
  match Lemur.Failover.proactive c inputs anticipated with
  | Error e -> Alcotest.failf "proactive failed: %s" e
  | Ok (primary, fallbacks) ->
      Alcotest.(check bool) "primary passes the oracle" true (oracle_ok primary);
      Alcotest.(check int) "one fallback per anticipated failure"
        (List.length anticipated) (List.length fallbacks);
      List.iter
        (fun (f, fb) ->
          let t = fb.Lemur.Deployment.config.Plan.topology in
          Alcotest.(check bool) "fallback passes the oracle" true (oracle_ok fb);
          match f with
          | Lemur.Failover.Smartnic_failed ->
              Alcotest.(check int) "nic absent in its fallback" 0
                (List.length t.Lemur_topology.Topology.smartnics)
          | Lemur.Failover.Ofswitch_failed ->
              Alcotest.(check bool) "ofswitch absent in its fallback" true
                (t.Lemur_topology.Topology.ofswitch = None)
          | Lemur.Failover.Server_failed name ->
              Alcotest.(check bool) "server absent in its fallback" false
                (List.mem name (Lemur_topology.Topology.server_names t))
          | Lemur.Failover.Pisa_failed -> ())
        fallbacks

(* Property tests: whatever dynamics and failover hand back as a
   *successful* redeployment must itself satisfy the placement oracle —
   reconfiguration is not allowed to trade one SLO for another. *)

let prop_dynamics_oracle =
  QCheck.Test.make ~name:"dynamics results pass the oracle" ~count:15
    QCheck.(make Gen.(int_range 1 10_000))
    (fun seed ->
      let d = base_deployment () in
      let prng = Lemur_util.Prng.create ~seed in
      let factor = 0.5 +. Lemur_util.Prng.float prng 1.0 in
      let slo =
        Lemur_slo.Slo.make
          ~t_min:(Lemur_util.Units.gbps (1.0 *. factor))
          ~t_max:(Lemur_util.Units.gbps 100.0) ()
      in
      let extra_text =
        match Lemur_util.Prng.int prng 3 with
        | 0 -> "Tunnel -> IPv4Fwd"
        | 1 -> "ACL -> NAT"
        | _ -> "Encrypt"
      in
      let extra =
        {
          Plan.id = "extra";
          graph = Lemur_spec.Loader.chain_of_string ~name:"extra" extra_text;
          slo = Lemur_slo.Slo.best_effort;
        }
      in
      let events =
        [
          Lemur.Dynamics.Slo_changed { chain_id = "chain3"; slo };
          Lemur.Dynamics.Chain_added extra;
        ]
        @ (if Lemur_util.Prng.int prng 2 = 0 then
             [ Lemur.Dynamics.Chain_removed "extra" ]
           else [])
      in
      match Lemur.Dynamics.apply_all d events with
      | Error _ -> true (* infeasibility is a legal answer, not a bug *)
      | Ok d' -> oracle_ok d')

let prop_failover_oracle =
  QCheck.Test.make ~name:"failover results pass the oracle" ~count:8
    QCheck.(make Gen.(int_range 1 10_000))
    (fun seed ->
      let sc = Lemur_check.Scenario.generate ~quick:true ~seed () in
      let c = Lemur_check.Scenario.config sc in
      let inputs = Lemur_check.Scenario.inputs sc in
      match Lemur.Deployment.deploy c inputs with
      | Error _ -> true
      | Ok d ->
          List.for_all
            (fun f ->
              match Lemur.Failover.react d f with
              | Error _ -> true (* no viable degraded placement *)
              | Ok d' -> oracle_ok d')
            [
              Lemur.Failover.Pisa_failed;
              Lemur.Failover.Smartnic_failed;
              Lemur.Failover.Ofswitch_failed;
            ])

let prop_proactive_oracle =
  QCheck.Test.make ~name:"proactive fallbacks pass the oracle" ~count:8
    QCheck.(make Gen.(int_range 1 10_000))
    (fun seed ->
      let sc = Lemur_check.Scenario.generate ~quick:true ~seed () in
      let c = Lemur_check.Scenario.config sc in
      let inputs = Lemur_check.Scenario.inputs sc in
      match
        Lemur.Failover.proactive c inputs
          [ Lemur.Failover.Pisa_failed; Lemur.Failover.Smartnic_failed ]
      with
      | Error _ -> true
      | Ok (primary, fallbacks) ->
          oracle_ok primary
          && List.for_all (fun (_, fb) -> oracle_ok fb) fallbacks)

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [ prop_dynamics_oracle; prop_failover_oracle; prop_proactive_oracle ]

let suite =
  qcheck_cases
  @ [
    Alcotest.test_case "SLO change replaces" `Quick test_slo_change_replaces;
    Alcotest.test_case "chain add/remove" `Quick test_chain_add_remove;
    Alcotest.test_case "infeasible SLO change reported" `Quick
      test_infeasible_slo_change_reported;
    Alcotest.test_case "time-varying SLO schedule" `Quick test_schedule;
    Alcotest.test_case "pisa failure without fallback" `Quick
      test_pisa_failure_no_fallback;
    Alcotest.test_case "pisa failure falls back to servers" `Quick
      test_pisa_failure_with_real_matrix;
    Alcotest.test_case "server failure" `Quick test_server_failure;
    Alcotest.test_case "degrade error paths" `Quick test_degrade_errors;
    Alcotest.test_case "proactive fallbacks" `Quick test_proactive;
    Alcotest.test_case "batched apply matches sequential" `Quick
      test_apply_batch_equivalent;
    Alcotest.test_case "batched apply skips intermediates" `Quick
      test_apply_batch_skips_intermediates;
    Alcotest.test_case "batched apply names the offender" `Quick
      test_apply_batch_names_offender;
    Alcotest.test_case "smartnic recovery" `Quick test_recover_smartnic;
    Alcotest.test_case "server recovery restores its nic" `Quick
      test_recover_server_brings_its_nic;
    Alcotest.test_case "schedule window switching" `Quick
      test_schedule_switching;
    Alcotest.test_case "proactive with simultaneous anticipated failures"
      `Quick test_proactive_multiple_failures;
  ]
