open Lemur_placer
open Lemur_spec

let topo () = Lemur_topology.Topology.testbed ()
let config () = Plan.default_config (topo ())

let input ?(slo = Lemur_slo.Slo.best_effort) ?(id = "c") text =
  { Plan.id; graph = Loader.chain_of_string ~name:id text; slo }

let all_server _config i = Array.make (Graph.size i.Plan.graph) Plan.Server

let test_allowed_locations () =
  let c = config () in
  let enc = Lemur_nf.Instance.make Lemur_nf.Kind.Encrypt in
  Alcotest.(check bool) "encrypt server only" true
    (Plan.allowed_locations c enc = [ Plan.Server ]);
  let fwd = Lemur_nf.Instance.make Lemur_nf.Kind.Ipv4_fwd in
  Alcotest.(check bool) "fwd P4-only in eval" true
    (Plan.allowed_locations c fwd = [ Plan.Switch ]);
  (* no smartnic in the default rack *)
  let chacha = Lemur_nf.Instance.make Lemur_nf.Kind.Fast_encrypt in
  Alcotest.(check bool) "no smartnic -> server" true
    (Plan.allowed_locations c chacha = [ Plan.Server ]);
  let c_nic =
    Plan.default_config (Lemur_topology.Topology.testbed ~smartnic:true ())
  in
  Alcotest.(check bool) "smartnic available" true
    (List.mem Plan.Smartnic (Plan.allowed_locations c_nic chacha))

let test_invalid_pattern_rejected () =
  let c = config () in
  let i = input "Encrypt -> IPv4Fwd" in
  let locs = [| Plan.Switch; Plan.Switch |] in
  match Plan.elaborate c i locs with
  | _ -> Alcotest.fail "Encrypt cannot run on the switch"
  | exception Plan.Invalid_pattern _ -> ()

let test_subgroup_formation () =
  let c = config () in
  let i = input "Encrypt -> Decrypt -> UrlFilter" in
  let plan = Plan.elaborate c i (all_server c i) in
  Alcotest.(check int) "one run-to-completion subgroup" 1
    (List.length plan.Plan.subgroups);
  Alcotest.(check int) "one segment" 1 plan.Plan.segments;
  let sg = List.hd plan.Plan.subgroups in
  Alcotest.(check int) "3 NFs" 3 (List.length sg.Plan.sg_nodes);
  Alcotest.(check bool) "replicable" true sg.Plan.sg_replicable

let test_subgroup_split_by_switch_nf () =
  let c = config () in
  let i = input "Encrypt -> ACL -> Decrypt" in
  let locs = [| Plan.Server; Plan.Switch; Plan.Server |] in
  let plan = Plan.elaborate c i locs in
  Alcotest.(check int) "two subgroups" 2 (List.length plan.Plan.subgroups);
  Alcotest.(check int) "two segments (bounce in between)" 2 plan.Plan.segments;
  Alcotest.(check (float 1e-9)) "2 link visits" 2.0 plan.Plan.link_visits

let test_branch_subgroups_not_replicable () =
  let c = config () in
  (* LB branches to two NATs: the subgroup holding LB must not replicate. *)
  let i = input "Encrypt -> LB -> [{'a': 1, NAT}, {'a': 2, NAT}] -> UrlFilter" in
  let plan = Plan.elaborate c i (all_server c i) in
  let lb_sg =
    List.find
      (fun sg ->
        List.exists
          (fun id ->
            (Graph.node i.Plan.graph id).Graph.instance.Lemur_nf.Instance.kind
            = Lemur_nf.Kind.Lb)
          sg.Plan.sg_nodes)
      plan.Plan.subgroups
  in
  Alcotest.(check bool) "branch subgroup not replicable" false lb_sg.Plan.sg_replicable;
  (* the merge NF (UrlFilter) also must not replicate *)
  let uf_sg =
    List.find
      (fun sg ->
        List.exists
          (fun id ->
            (Graph.node i.Plan.graph id).Graph.instance.Lemur_nf.Instance.kind
            = Lemur_nf.Kind.Url_filter)
          sg.Plan.sg_nodes)
      plan.Plan.subgroups
  in
  Alcotest.(check bool) "merge subgroup not replicable" false uf_sg.Plan.sg_replicable

let test_limiter_not_replicable () =
  let c = config () in
  let i = input "Limiter" in
  let plan = Plan.elaborate c i [| Plan.Server |] in
  Alcotest.(check bool) "limiter sg not replicable" false
    (List.hd plan.Plan.subgroups).Plan.sg_replicable

let test_capacity_model () =
  let c = config () in
  let i = input "Encrypt" in
  let plan = Plan.elaborate c i [| Plan.Server |] in
  let cap1 = Plan.capacity c plan ~cores:[ 1 ] in
  let cap2 = Plan.capacity c plan ~cores:[ 2 ] in
  (* Encrypt ~9100 worst-case cycles + 220 NSH at 1.7 GHz, 1500 B *)
  Alcotest.(check bool) "1 core ~2.2 Gbps" true (cap1 > 2.0e9 && cap1 < 2.4e9);
  Alcotest.(check bool) "2 cores nearly double" true
    (cap2 > 1.9 *. cap1 && cap2 < 2.0 *. cap1)

let test_capacity_infinite_for_hardware () =
  let c = config () in
  let i = input "ACL -> IPv4Fwd" in
  let plan = Plan.elaborate c i [| Plan.Switch; Plan.Switch |] in
  Alcotest.(check bool) "all-switch chain is line-rate" true
    (Plan.capacity c plan ~cores:[] = infinity)

let test_fraction_weighting () =
  let c = config () in
  (* UrlFilter only sees 25% of traffic: chain capacity = 4x its rate. *)
  let i = input "ACL -> [{'x': 1, 'weight': 0.25, UrlFilter}, {'weight': 0.75}] -> IPv4Fwd" in
  let locs = Array.make 3 Plan.Server in
  (* node ids: ACL=0, UrlFilter=1, IPv4Fwd=2 *)
  locs.(0) <- Plan.Switch;
  locs.(2) <- Plan.Switch;
  let plan = Plan.elaborate c i locs in
  let full = input "UrlFilter" in
  let full_plan = Plan.elaborate c full [| Plan.Server |] in
  let cap_frac = Plan.capacity c plan ~cores:[ 1 ] in
  let cap_full = Plan.capacity c full_plan ~cores:[ 1 ] in
  Alcotest.(check (float 1e7)) "4x when 25% of traffic" (4.0 *. cap_full) cap_frac

let test_latency_model () =
  let c = config () in
  let i = input "Encrypt -> ACL -> Decrypt" in
  let locs = [| Plan.Server; Plan.Switch; Plan.Server |] in
  let plan = Plan.elaborate c i locs in
  let lat = Plan.latency c plan in
  (* two Encrypt/Decrypt hops ~5.5us each + 2 bounces + ToR traversals *)
  Alcotest.(check bool) "latency in the tens of us" true
    (lat > 10_000.0 && lat < 40_000.0);
  let tight = { i with Plan.slo = Lemur_slo.Slo.make ~d_max:(Lemur_util.Units.us 5.0) () } in
  let plan_tight = Plan.elaborate c tight locs in
  Alcotest.(check bool) "violates 5us" false (Plan.meets_latency c plan_tight)

let test_switch_projection () =
  let c = config () in
  let i = input "ACL -> Encrypt -> NAT -> IPv4Fwd" in
  let locs = [| Plan.Switch; Plan.Server; Plan.Switch; Plan.Switch |] in
  let plan = Plan.elaborate c i locs in
  let proj = Plan.switch_projection plan in
  Alcotest.(check int) "3 switch NFs" 3 (List.length proj.Lemur_p4.Pipeline.nf_nodes);
  Alcotest.(check bool) "crosses platforms" true proj.Lemur_p4.Pipeline.crosses_platform;
  (* projected edge ACL -> NAT skips the server NF *)
  Alcotest.(check bool) "projected edge" true
    (List.mem ("c_ACL", "c_NAT") proj.Lemur_p4.Pipeline.nf_edges);
  Alcotest.(check (list string)) "entry" [ "c_ACL" ] proj.Lemur_p4.Pipeline.entry_nfs

(* The §5.2 extreme configuration, recalibrated to our simulated
   compiler: its branch packing is more aggressive than the Tofino
   toolchain's, so the stage wall sits at 17 branched NATs instead of
   the paper's 11 (see EXPERIMENTS.md). The mechanism is identical:
   all-on-switch placements overflow; Lemur evicts NATs to the server
   until the unified pipeline compiles. *)
let extreme_nat_count = 17

let extreme_chain_input c n =
  ignore c;
  let arms =
    String.concat ", "
      (List.init n (fun k -> Printf.sprintf "{'b': %d, NAT}" (k + 1)))
  in
  input ~id:"extreme" (Printf.sprintf "BPF -> [%s] -> IPv4Fwd" arms)

let test_stagecheck_extreme () =
  let c = config () in
  let all_switch i = Array.make (Graph.size i.Plan.graph) Plan.Switch in
  let big = extreme_chain_input c extreme_nat_count in
  let p_big = Plan.elaborate c big (all_switch big) in
  (match Stagecheck.check c [ p_big ] with
  | Stagecheck.Overflow n ->
      Alcotest.(check bool) "needs more than 12" true (n > 12)
  | Stagecheck.Fits n ->
      Alcotest.failf "%d NATs should overflow (got %d stages)" extreme_nat_count n
  | Stagecheck.Conflict m -> Alcotest.failf "unexpected conflict: %s" m);
  (* 12 on the switch plus NSH steering still compiles to 12 stages. *)
  let small = extreme_chain_input c 12 in
  let locs = all_switch small in
  let p_small = Plan.elaborate c small locs in
  match Stagecheck.check c [ p_small ] with
  | Stagecheck.Fits n -> Alcotest.(check bool) "within 12" true (n <= 12)
  | _ -> Alcotest.fail "12 NATs should fit"

let test_lemur_evicts_to_fit () =
  (* Lemur resolves the extreme config by moving NATs to the server;
     HW Preferred does not recover and stays infeasible. *)
  let c = config () in
  let base = Lemur.Chains.base_rate c (extreme_chain_input c extreme_nat_count).Plan.graph in
  let slo = Lemur_slo.Slo.make ~t_min:(0.5 *. base) ~t_max:(Lemur_util.Units.gbps 100.0) () in
  let i = { (extreme_chain_input c extreme_nat_count) with Plan.slo } in
  (match Strategy.place Strategy.Lemur c [ i ] with
  | Strategy.Placed p ->
      Alcotest.(check bool) "fits" true (p.Strategy.stages_used <= 12);
      let r = List.hd p.Strategy.chain_reports in
      let on_switch =
        Array.fold_left
          (fun acc loc -> if loc = Plan.Switch then acc + 1 else acc)
          0 r.Strategy.plan.Plan.locs
      in
      let on_server = Graph.size i.Plan.graph - on_switch in
      Alcotest.(check bool) "some NATs moved to the server" true (on_server >= 1);
      Alcotest.(check bool) "most NATs stay on the switch" true (on_switch >= 10)
  | Strategy.Infeasible { reason } -> Alcotest.failf "lemur failed: %s" reason);
  match Strategy.place Strategy.Hw_preferred c [ i ] with
  | Strategy.Placed _ -> Alcotest.fail "HW preferred should overflow stages"
  | Strategy.Infeasible _ -> ()

let test_ratelp_shares_link () =
  (* Two chains sharing one 40G link, each bouncing twice: rates are
     jointly capped at 2*rA + 2*rB <= 40. *)
  let entries =
    [
      { Ratelp.entry_id = "a"; t_min = 1e9; t_max = 100e9; weight = 1.0; capacity = 30e9; link_loads = [ ("server0", 2.0) ] };
      { Ratelp.entry_id = "b"; t_min = 1e9; t_max = 100e9; weight = 1.0; capacity = 30e9; link_loads = [ ("server0", 2.0) ] };
    ]
  in
  match Ratelp.solve ~link_caps:[ ("server0", 40e9) ] entries with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      Alcotest.(check (float 1e6)) "total 20G" 20e9 r.Ratelp.total_rate;
      Alcotest.(check (float 1e6)) "marginal 18G" 18e9 r.Ratelp.total_marginal

let test_ratelp_weights () =
  (* Two identical chains share a link; the weighted one takes the
     contested capacity (footnote 2's differentiated marginal revenue). *)
  let entry id weight =
    {
      Ratelp.entry_id = id; t_min = 1e9; t_max = 100e9; weight;
      capacity = 30e9; link_loads = [ ("server0", 2.0) ];
    }
  in
  (match
     Ratelp.solve ~link_caps:[ ("server0", 40e9) ]
       [ entry "gold" 3.0; entry "bulk" 1.0 ]
   with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      let rate id = List.assoc id r.Ratelp.rates in
      Alcotest.(check bool)
        (Printf.sprintf "gold (%.1fG) gets the slack, bulk (%.1fG) the floor"
           (rate "gold" /. 1e9) (rate "bulk" /. 1e9))
        true
        (rate "gold" > 15e9 && rate "bulk" < 2e9))

let test_ratelp_infeasible_tmin () =
  let entries =
    [ { Ratelp.entry_id = "a"; t_min = 5e9; t_max = 10e9; weight = 1.0; capacity = 2e9; link_loads = [] } ]
  in
  Alcotest.(check bool) "capacity below tmin" true
    (Ratelp.solve ~link_caps:[] entries = None)

let canonical_inputs delta set =
  let c = config () in
  Lemur.Chains.inputs_for_delta c ~delta set

let test_lemur_feasible_and_wins () =
  let c = config () in
  let inputs = canonical_inputs 0.5 [ 1; 2; 3; 4 ] in
  match Strategy.place Strategy.Lemur c inputs with
  | Strategy.Infeasible { reason } -> Alcotest.failf "lemur infeasible: %s" reason
  | Strategy.Placed p ->
      Alcotest.(check bool) "positive marginal" true (p.Strategy.total_marginal > 0.0);
      Alcotest.(check bool) "fits stages" true (p.Strategy.stages_used <= 12);
      Alcotest.(check bool) "within cores" true (p.Strategy.cores_used <= 15);
      (* every chain at or above t_min *)
      List.iter
        (fun r ->
          Alcotest.(check bool) "meets tmin" true
            (r.Strategy.rate >= r.Strategy.plan.Plan.input.Plan.slo.Lemur_slo.Slo.t_min -. 1e3))
        p.Strategy.chain_reports;
      (* and beats every baseline *)
      List.iter
        (fun s ->
          match Strategy.place s c inputs with
          | Strategy.Infeasible _ -> ()
          | Strategy.Placed q ->
              Alcotest.(check bool)
                (Printf.sprintf "Lemur >= %s" (Strategy.name s))
                true
                (p.Strategy.total_marginal >= q.Strategy.total_marginal -. 1e6))
        [ Strategy.Hw_preferred; Strategy.Sw_preferred; Strategy.Min_bounce; Strategy.Greedy ]

let test_feasibility_monotone_in_delta () =
  let c = config () in
  let feasible delta =
    Strategy.is_feasible
      (Strategy.place Strategy.Lemur c (canonical_inputs delta [ 1; 2; 3 ]))
  in
  let flags = List.map feasible [ 0.5; 1.0; 1.5; 2.0; 2.5; 3.0 ] in
  (* once infeasible, stays infeasible *)
  let rec check_monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone" true ((not b) || a);
        check_monotone rest
    | _ -> ()
  in
  check_monotone flags;
  Alcotest.(check bool) "feasible at 0.5" true (List.hd flags)

let test_lemur_tracks_optimal () =
  let c = config () in
  let inputs = canonical_inputs 1.0 [ 1; 2; 3 ] in
  match (Strategy.place Strategy.Lemur c inputs, Strategy.place Strategy.Optimal c inputs) with
  | Strategy.Placed l, Strategy.Placed o ->
      Alcotest.(check bool) "lemur within 1% of optimal" true
        (l.Strategy.total_marginal >= o.Strategy.total_marginal *. 0.99)
  | _ -> Alcotest.fail "both should be feasible"

let test_sw_preferred_fails_early () =
  let c = config () in
  (* SW preferred cannot scale the single non-replicable subgroup. *)
  let inputs = canonical_inputs 1.0 [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "SW preferred infeasible at delta 1" false
    (Strategy.is_feasible (Strategy.place Strategy.Sw_preferred c inputs))

let test_ablations_weaker () =
  let c = config () in
  let inputs = canonical_inputs 0.5 [ 1; 2; 3; 4 ] in
  match
    ( Strategy.place Strategy.Lemur c inputs,
      Strategy.place Strategy.No_core_alloc c inputs )
  with
  | Strategy.Placed l, Strategy.Placed nca ->
      Alcotest.(check bool) "no-core-alloc strictly weaker" true
        (nca.Strategy.total_marginal < l.Strategy.total_marginal)
  | _ -> Alcotest.fail "both feasible at delta 0.5"

let test_multi_server () =
  (* Fig 3a: two 8-core servers roughly double the single-server rate at
     low delta. *)
  let one = Plan.default_config (Lemur_topology.Topology.testbed ~num_servers:1 ~cores_per_socket:4 ()) in
  let two = Plan.default_config (Lemur_topology.Topology.testbed ~num_servers:2 ~cores_per_socket:4 ()) in
  let inputs c = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 1; 2; 3 ] in
  match
    ( Strategy.place Strategy.Lemur one (inputs one),
      Strategy.place Strategy.Lemur two (inputs two) )
  with
  | Strategy.Placed p1, Strategy.Placed p2 ->
      Alcotest.(check bool) "two servers beat one" true
        (p2.Strategy.total_rate > p1.Strategy.total_rate *. 1.3)
  | Strategy.Infeasible { reason }, _ | _, Strategy.Infeasible { reason } ->
      Alcotest.failf "unexpected infeasible: %s" reason

let test_strategy_patterns () =
  let c = config () in
  (* HW Preferred puts everything P4-capable on the switch. *)
  let i = input ~slo:(Lemur_slo.Slo.make ~t_min:1e8 ~t_max:100e9 ()) "ACL -> Encrypt -> NAT -> IPv4Fwd" in
  (match Strategy.place Strategy.Hw_preferred c [ i ] with
  | Strategy.Infeasible { reason } -> Alcotest.failf "hw preferred failed: %s" reason
  | Strategy.Placed p ->
      let locs = (List.hd p.Strategy.chain_reports).Strategy.plan.Plan.locs in
      Alcotest.(check bool) "ACL on switch" true (locs.(0) = Plan.Switch);
      Alcotest.(check bool) "Encrypt on server (no choice)" true (locs.(1) = Plan.Server);
      Alcotest.(check bool) "NAT on switch" true (locs.(2) = Plan.Switch));
  (* SW Preferred pulls everything with a software implementation down. *)
  match Strategy.place Strategy.Sw_preferred c [ i ] with
  | Strategy.Infeasible { reason } -> Alcotest.failf "sw preferred failed: %s" reason
  | Strategy.Placed p ->
      let locs = (List.hd p.Strategy.chain_reports).Strategy.plan.Plan.locs in
      Alcotest.(check bool) "ACL on server" true (locs.(0) = Plan.Server);
      Alcotest.(check bool) "NAT on server" true (locs.(2) = Plan.Server);
      Alcotest.(check bool) "IPv4Fwd stays on switch (P4-only)" true
        (locs.(3) = Plan.Switch)

let test_min_bounce_picks_fewest_bounces () =
  let c = config () in
  (* Encrypt - NAT - Decrypt: pulling NAT to the server gives one bounce
     instead of two; Min Bounce must take it. *)
  let i = input ~slo:(Lemur_slo.Slo.make ~t_min:1e8 ~t_max:100e9 ()) "Encrypt -> NAT -> Decrypt" in
  match Strategy.place Strategy.Min_bounce c [ i ] with
  | Strategy.Infeasible { reason } -> Alcotest.failf "min bounce failed: %s" reason
  | Strategy.Placed p ->
      let r = List.hd p.Strategy.chain_reports in
      Alcotest.(check int) "single bounce" 1 r.Strategy.bounces;
      Alcotest.(check bool) "NAT pulled to the server" true
        (r.Strategy.plan.Plan.locs.(1) = Plan.Server)

let test_latency_constrains_placement () =
  let c = config () in
  let loose = Lemur_slo.Slo.make ~t_min:1e9 ~t_max:100e9 ~d_max:(Lemur_util.Units.us 100.0) () in
  let tight = Lemur_slo.Slo.make ~t_min:1e9 ~t_max:100e9 ~d_max:(Lemur_util.Units.us 1.0) () in
  let mk slo = [ { (Lemur.Chains.chain_input 3) with Plan.slo } ] in
  Alcotest.(check bool) "loose latency feasible" true
    (Strategy.is_feasible (Strategy.place Strategy.Lemur c (mk loose)));
  Alcotest.(check bool) "1us infeasible (Dedup alone takes ~18us)" false
    (Strategy.is_feasible (Strategy.place Strategy.Lemur c (mk tight)))

(* Canonical render of a placement outcome — hex floats and plan
   signatures, no wall-clock fields — so cache-equivalence checks can
   compare byte-for-byte. *)
let render_outcome = function
  | Strategy.Infeasible { reason } -> "infeasible:" ^ reason
  | Strategy.Placed p ->
      String.concat ";"
        (Printf.sprintf "%h|%h|%d|%d" p.Strategy.total_rate
           p.Strategy.total_marginal p.Strategy.stages_used
           p.Strategy.cores_used
        :: List.map
             (fun (r : Strategy.chain_report) ->
               Printf.sprintf "%s|%h|%h|%h|%d|%s"
                 (Memo.plan_sig r.Strategy.plan)
                 r.Strategy.rate r.Strategy.capacity r.Strategy.latency
                 r.Strategy.bounces
                 (String.concat ","
                    (List.map string_of_int (Array.to_list r.Strategy.cores))))
             p.Strategy.chain_reports)

let test_config_sig_structural () =
  (* Two configs built independently from equal topologies are distinct
     values but must share a signature — that is what lets the runtime
     rebuild its config every event without losing the cache. *)
  let c1 = config () and c2 = config () in
  Alcotest.(check bool) "distinct physical configs share a signature" true
    (c1 != c2 && String.equal (Memo.config_sig c1) (Memo.config_sig c2));
  let c3 = { c1 with Plan.pkt_bytes = c1.Plan.pkt_bytes + 64 } in
  Alcotest.(check bool) "pkt_bytes changes the signature" false
    (String.equal (Memo.config_sig c1) (Memo.config_sig c3));
  let c4 =
    Plan.default_config (Lemur_topology.Topology.testbed ~smartnic:true ())
  in
  Alcotest.(check bool) "topology changes the signature" false
    (String.equal (Memo.config_sig c1) (Memo.config_sig c4))

let test_variant_cache_demand_shift () =
  (* A demand-only change (t_max cap) must hit the variant cache — the
     key covers (config, graph, t_min) only — and still produce a
     placement byte-identical to a from-scratch solve, because
     everything t_max touches happens downstream of the cached pattern
     search. *)
  let c = config () in
  let mk t_max =
    let i = input ~id:"vc" "Encrypt -> ACL -> IPv4Fwd" in
    let slo = Lemur_slo.Slo.make ~t_min:1e9 ~t_max () in
    [ { i with Plan.slo } ]
  in
  Memo.clear ();
  Strategy.clear_variant_cache ();
  Strategy.set_variant_cache true;
  ignore (Strategy.place Strategy.Lemur c (mk 20e9));
  let hits0, _ = Strategy.variant_cache_stats () in
  let cached = render_outcome (Strategy.place Strategy.Lemur c (mk 10e9)) in
  let hits1, _ = Strategy.variant_cache_stats () in
  Alcotest.(check bool) "demand shift hits the variant cache" true
    (hits1 > hits0);
  Memo.clear ();
  Strategy.clear_variant_cache ();
  Strategy.set_variant_cache false;
  let scratch = render_outcome (Strategy.place Strategy.Lemur c (mk 10e9)) in
  Strategy.set_variant_cache true;
  Alcotest.(check string) "cached placement byte-identical to scratch" scratch
    cached

let qcheck_cases =
  let open QCheck in
  let kinds_with_server =
    List.filter
      (fun k -> List.mem Lemur_nf.Target.Cpp (Lemur_nf.Kind.targets_eval k))
      Lemur_nf.Kind.all
  in
  (* Random branched pipelines: NAME -> [ {..,NAME},{..,NAME} ] -> NAME
     shapes with random kinds and arm counts. *)
  let gen_branched =
    let name = Gen.oneofl (List.map Lemur_nf.Kind.name kinds_with_server) in
    Gen.(
      let* pre = name in
      let* arms = int_range 2 3 in
      let* arm_bodies = list_size (return arms) (list_size (int_range 1 2) name) in
      let* post = name in
      let arm_strs =
        List.mapi
          (fun i body ->
            Printf.sprintf "{'tc': %d, %s}" (i + 1) (String.concat " -> " body))
          arm_bodies
      in
      return
        (Printf.sprintf "%s -> [%s] -> %s" pre (String.concat ", " arm_strs) post))
  in
  [
    (* Elaborated plans over branched chains keep their structural
       invariants: path fractions sum to 1, every server NF belongs to
       exactly one subgroup, and subgroup fractions match their nodes. *)
    Test.make ~name:"branched plan invariants" ~count:40
      (make ~print:Fun.id gen_branched)
      (fun text ->
        let c = config () in
        let i = input ~id:"b" text in
        let locs = Array.make (Graph.size i.Plan.graph) Plan.Server in
        (* sprinkle hardware where allowed: put every P4-capable NF on
           the switch to exercise mixed patterns *)
        List.iter
          (fun n ->
            if
              List.mem Plan.Switch
                (Plan.allowed_locations c n.Graph.instance)
            then locs.(n.Graph.id) <- Plan.Switch)
          (Graph.nodes i.Plan.graph);
        let plan = Plan.elaborate c i locs in
        let paths = Graph.linearize i.Plan.graph in
        let fraction_sum =
          Lemur_util.Listx.sum_by (fun p -> p.Graph.fraction) paths
        in
        let server_nodes =
          List.filter
            (fun n -> locs.(n.Graph.id) = Plan.Server)
            (Graph.nodes i.Plan.graph)
        in
        let sg_nodes =
          List.concat_map (fun sg -> sg.Plan.sg_nodes) plan.Plan.subgroups
        in
        Float.abs (fraction_sum -. 1.0) < 1e-9
        && List.length sg_nodes = List.length server_nodes
        && List.for_all
             (fun n -> List.mem n.Graph.id sg_nodes)
             server_nodes
        && List.for_all
             (fun sg -> sg.Plan.sg_fraction > 0.0 && sg.Plan.sg_fraction <= 1.0 +. 1e-9)
             plan.Plan.subgroups
        && plan.Plan.link_visits >= 0.0);
    (* For random linear chains, any Lemur placement satisfies the
       invariants: cores within budget, stages within budget, rate >= tmin. *)
    Test.make ~name:"placement invariants on random chains" ~count:30
      (list_of_size (Gen.int_range 1 5) (oneofl (List.map Lemur_nf.Kind.name kinds_with_server)))
      (fun names ->
        let c = config () in
        let text = String.concat " -> " names in
        let i = input ~id:"rand" text in
        let base = Lemur.Chains.base_rate c i.Plan.graph in
        let slo = Lemur_slo.Slo.make ~t_min:(0.5 *. base) ~t_max:(Lemur_util.Units.gbps 100.) () in
        match Strategy.place Strategy.Lemur c [ { i with Plan.slo } ] with
        | Strategy.Infeasible _ -> true (* allowed; just must not crash *)
        | Strategy.Placed p ->
            p.Strategy.cores_used <= 15
            && p.Strategy.stages_used <= 12
            && List.for_all
                 (fun r -> r.Strategy.rate >= slo.Lemur_slo.Slo.t_min -. 1e3)
                 p.Strategy.chain_reports);
    (* Structural-cache soundness: the same chain set placed with the
       shared memo and variant cache warm (second call is all hits)
       must render byte-identically to a solve with every cache dropped
       and the variant cache disabled. *)
    Test.make ~name:"placements identical with warm structural cache"
      ~count:25
      (list_of_size (Gen.int_range 1 4)
         (oneofl (List.map Lemur_nf.Kind.name kinds_with_server)))
      (fun names ->
        let c = config () in
        let text = String.concat " -> " names in
        let i = input ~id:"memoq" text in
        let base = Lemur.Chains.base_rate c i.Plan.graph in
        let slo =
          Lemur_slo.Slo.make ~t_min:(0.4 *. base)
            ~t_max:(Lemur_util.Units.gbps 50.) ()
        in
        let inputs = [ { i with Plan.slo } ] in
        Strategy.set_variant_cache true;
        ignore (Strategy.place Strategy.Lemur c inputs);
        let warm = render_outcome (Strategy.place Strategy.Lemur c inputs) in
        Memo.clear ();
        Strategy.clear_variant_cache ();
        Strategy.set_variant_cache false;
        let cold = render_outcome (Strategy.place Strategy.Lemur c inputs) in
        Strategy.set_variant_cache true;
        String.equal warm cold);
  ]

let suite =
  [
    Alcotest.test_case "allowed locations" `Quick test_allowed_locations;
    Alcotest.test_case "invalid pattern rejected" `Quick test_invalid_pattern_rejected;
    Alcotest.test_case "subgroup formation" `Quick test_subgroup_formation;
    Alcotest.test_case "subgroup split by switch NF" `Quick test_subgroup_split_by_switch_nf;
    Alcotest.test_case "branch/merge subgroups pinned" `Quick test_branch_subgroups_not_replicable;
    Alcotest.test_case "limiter pinned" `Quick test_limiter_not_replicable;
    Alcotest.test_case "capacity model" `Quick test_capacity_model;
    Alcotest.test_case "hardware chains at line rate" `Quick test_capacity_infinite_for_hardware;
    Alcotest.test_case "fraction weighting" `Quick test_fraction_weighting;
    Alcotest.test_case "latency model" `Quick test_latency_model;
    Alcotest.test_case "switch projection" `Quick test_switch_projection;
    Alcotest.test_case "stage check extreme config" `Quick test_stagecheck_extreme;
    Alcotest.test_case "lemur evicts to fit stages" `Slow test_lemur_evicts_to_fit;
    Alcotest.test_case "rate LP shares links" `Quick test_ratelp_shares_link;
    Alcotest.test_case "rate LP weights" `Quick test_ratelp_weights;
    Alcotest.test_case "rate LP respects tmin" `Quick test_ratelp_infeasible_tmin;
    Alcotest.test_case "lemur feasible and wins (d=0.5)" `Slow test_lemur_feasible_and_wins;
    Alcotest.test_case "feasibility monotone in delta" `Slow test_feasibility_monotone_in_delta;
    Alcotest.test_case "lemur tracks optimal" `Slow test_lemur_tracks_optimal;
    Alcotest.test_case "SW preferred fails early" `Quick test_sw_preferred_fails_early;
    Alcotest.test_case "ablations weaker" `Quick test_ablations_weaker;
    Alcotest.test_case "multi-server placement" `Slow test_multi_server;
    Alcotest.test_case "strategy pattern corners" `Quick test_strategy_patterns;
    Alcotest.test_case "min bounce picks fewest bounces" `Quick test_min_bounce_picks_fewest_bounces;
    Alcotest.test_case "latency constrains placement" `Quick test_latency_constrains_placement;
    Alcotest.test_case "config signature is structural" `Quick test_config_sig_structural;
    Alcotest.test_case "variant cache exact under demand shift" `Quick test_variant_cache_demand_shift;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases
