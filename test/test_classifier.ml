(* The classifier subsystem: generator determinism, the qcheck
   differential (computed index and TSS vs the linear-scan ground
   truth, overlap and no-match included), the RMI error-bound contract,
   remainder-corruption mutations, the profiler's algorithm-aware ACL
   cost, and engine/sim convergence with classification on. *)

open Lemur_classifier
module Profiler = Lemur_profiler.Profiler
module Datasheet = Lemur_nf.Datasheet

let test_generator_deterministic () =
  let a = Ruleset.generate ~size:300 () in
  let b = Ruleset.generate ~size:300 () in
  Alcotest.(check int) "sizes" 300 (Ruleset.size a);
  Alcotest.(check bool) "equal rulesets" true
    (Ruleset.rules a = Ruleset.rules b);
  Alcotest.(check bool) "equal headers" true
    (Ruleset.headers a ~flows:40 = Ruleset.headers b ~flows:40);
  let c = Ruleset.generate ~seed:99 ~size:300 () in
  Alcotest.(check bool) "seed changes rules" false
    (Ruleset.rules a = Ruleset.rules c);
  Array.iteri
    (fun i (r : Rule.t) -> Alcotest.(check int) "id = index" i r.Rule.id)
    (Ruleset.rules a)

let test_generator_negative () =
  Alcotest.check_raises "negative size"
    (Invalid_argument "Ruleset.generate: size < 0") (fun () ->
      ignore (Ruleset.generate ~size:(-1) ()))

let test_corner_matches () =
  let rs = Ruleset.generate ~size:200 () in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "corner inside rule" true
        (Rule.matches r (Rule.corner r)))
    (Ruleset.rules rs)

(* The hard agreement contract, deterministically over a real corpus:
   all three classifiers return the identical highest-priority rule. *)
let test_agreement_corpus () =
  List.iter
    (fun size ->
      let rs = Ruleset.generate ~size () in
      let lin = Classifier.build Classifier.Linear_scan rs in
      let tss = Classifier.build Classifier.Tuple_space rs in
      let nuevo = Classifier.build Classifier.Computed rs in
      for flow = 0 to 199 do
        let h = Ruleset.header_of_flow rs flow in
        let id c =
          match (Classifier.cost c h).Classifier.o_rule with
          | Some r -> r.Rule.id
          | None -> -1
        in
        let l = id lin in
        Alcotest.(check int) (Printf.sprintf "tss size=%d flow=%d" size flow)
          l (id tss);
        Alcotest.(check int) (Printf.sprintf "nuevo size=%d flow=%d" size flow)
          l (id nuevo)
      done)
    [ 0; 1; 17; 256; 2000 ]

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:60 ~name:"computed index == linear scan"
      (pair (int_bound 1000) (int_bound 400))
      (fun (seed, size) ->
        let rs = Ruleset.generate ~seed ~size () in
        let lin = Linear.build rs in
        let nuevo = Nuevo.build rs in
        let tss = Tss.build (Ruleset.rules rs) in
        List.for_all
          (fun flow ->
            let h = Ruleset.header_of_flow rs flow in
            let want =
              match fst (Linear.classify lin h) with
              | Some r -> r.Rule.id
              | None -> -1
            in
            let got_n =
              match (Nuevo.classify nuevo h).Nuevo.rule with
              | Some r -> r.Rule.id
              | None -> -1
            in
            let got_t =
              match (fun (r, _, _) -> r) (Tss.classify tss h) with
              | Some r -> r.Rule.id
              | None -> -1
            in
            want = got_n && want = got_t)
          (List.init 50 (fun i -> i)));
    (* The RMI's guarantee, probed directly: predecessor rank always
       exact, and the search window never exceeds the advertised
       bound. *)
    Test.make ~count:60 ~name:"rmi predecessor rank exact"
      (pair (int_bound 1000) (int_bound 300))
      (fun (seed, n) ->
        let rng = Lemur_util.Prng.create ~seed:(seed + 77) in
        let tbl = Hashtbl.create 64 in
        for _ = 1 to n do
          Hashtbl.replace tbl (Lemur_util.Prng.int rng 0x100000000) ()
        done;
        let keys =
          Array.of_list
            (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []))
        in
        let idx = Rmi.build keys in
        let slow k =
          let r = ref (-1) in
          Array.iteri (fun i key -> if key <= k then r := i) keys;
          !r
        in
        let probes =
          List.init 200 (fun _ -> Lemur_util.Prng.int rng 0x100000000)
          @ Array.to_list keys
          @ List.map (fun k -> max 0 (k - 1)) (Array.to_list keys)
        in
        List.for_all (fun k -> fst (Rmi.lookup idx k) = slow k) probes);
  ]

(* Corrupt the remainder: drop its best rule, aim a packet straight at
   it, and require the linear-vs-computed agreement gate to notice. *)
let test_mutation_remainder () =
  let rs = Ruleset.generate ~size:600 () in
  let lin = Linear.build rs in
  let nuevo = Nuevo.build rs in
  match Nuevo.corrupt_remainder_for_test nuevo with
  | None -> Alcotest.fail "remainder unexpectedly empty at size 600"
  | Some (bad, dropped) ->
      (* Find a header the dropped rule actually wins on: its corner,
         unless a higher-priority rule shadows it, in which case scan
         other remainder corners (one must win — priorities are
         unique). *)
      let wins h =
        match fst (Linear.classify lin h) with
        | Some r -> r.Rule.id = (dropped : Rule.t).Rule.id
        | None -> false
      in
      let header =
        if wins (Rule.corner dropped) then Some (Rule.corner dropped)
        else
          Array.fold_left
            (fun acc r ->
              match acc with
              | Some _ -> acc
              | None ->
                  let h = Rule.corner r in
                  (match fst (Linear.classify lin h) with
                  | Some w
                    when w.Rule.id = r.Rule.id
                         && w.Rule.id = (dropped : Rule.t).Rule.id ->
                      Some h
                  | _ -> None))
            None
            (Nuevo.remainder_rules nuevo)
      in
      (match header with
      | None ->
          (* Shadowed everywhere: corrupting it cannot change any
             result, so drop-and-retry at a bigger size would be the
             only option. With the default seed the corner wins; guard
             it so a generator change surfaces loudly. *)
          Alcotest.fail "no header reaches the dropped remainder rule"
      | Some h ->
          let agree a b =
            match (a, b) with
            | Some (x : Rule.t), Some (y : Rule.t) -> x.Rule.id = y.Rule.id
            | None, None -> true
            | _ -> false
          in
          Alcotest.(check bool) "intact index agrees" true
            (agree (fst (Linear.classify lin h)) (Nuevo.classify nuevo h).Nuevo.rule);
          Alcotest.(check bool) "corrupted index disagrees" false
            (agree (fst (Linear.classify lin h)) (Nuevo.classify bad h).Nuevo.rule))

let test_cost_model_orders () =
  let rs = Ruleset.generate ~size:10_000 () in
  let hs = Ruleset.headers rs ~flows:40 in
  let mean algo = Classifier.mean_cycles (Classifier.build algo rs) hs in
  let lin = mean Classifier.Linear_scan in
  let nuevo = mean Classifier.Computed in
  Alcotest.(check bool)
    (Printf.sprintf "computed (%.0f cy) >= 5x cheaper than linear (%.0f cy)"
       nuevo lin)
    true
    (nuevo *. 5.0 <= lin)

let test_profiler_acl_cycles () =
  let p = Profiler.create () in
  let c algo size = Profiler.acl_cycles p ~algo ~size Datasheet.Diff in
  let lin = c Classifier.Linear_scan 10_000 in
  let nuevo = c Classifier.Computed 10_000 in
  Alcotest.(check bool) "computed beats linear in the placer's eyes" true
    (nuevo < lin);
  Alcotest.(check bool) "cycles positive" true (nuevo > 0.0);
  (* memoized: equal on repeat *)
  Alcotest.(check (float 0.0)) "memoized" lin (c Classifier.Linear_scan 10_000);
  (* numa factor is multiplicative *)
  let same = Profiler.acl_cycles p ~algo:Classifier.Linear_scan ~size:10_000 Datasheet.Same in
  Alcotest.(check (float 1e-9)) "numa factor"
    (Datasheet.numa_factor Datasheet.Diff) (lin /. same);
  (* the error ablation shaves estimates, uniform_cycles overrides *)
  let pe = Profiler.create ~error:0.1 () in
  Alcotest.(check (float 1e-6)) "error scales" (lin *. 0.9)
    (Profiler.acl_cycles pe ~algo:Classifier.Linear_scan ~size:10_000 Datasheet.Diff);
  let pu = Profiler.create ~uniform_cycles:(Some 1234.0) () in
  Alcotest.(check (float 0.0)) "uniform override" 1234.0
    (Profiler.acl_cycles pu ~algo:Classifier.Computed ~size:10_000 Datasheet.Diff)

(* End to end: a spec with a large ACL, classification on, engine and
   sim still converge and the placer's plan is oracle-clean. *)
let test_engine_sim_converge_with_classifier () =
  List.iter
    (fun algo ->
      match
        (* No PISA or OpenFlow switch: the ACL must land on a CPU core
           or the SmartNIC, so packets really go through the
           classifier. *)
        Lemur.Deployment.of_spec
          ~topology:(Lemur_topology.Topology.no_pisa_testbed ~ofswitch:false ())
          ~acl_algo:(Some algo)
          "chain cls slo(tmin='0.2Gbps', tmax='10Gbps') = \
           ACL(rules=4096) -> Encrypt"
      with
      | Error e -> Alcotest.failf "deploy (%s): %s" (Classifier.algo_name algo) e
      | Ok d ->
          let before = Classifier.stats () in
          let er =
            Lemur_dataplane.Engine.run ~seed:5 ~config:d.Lemur.Deployment.config
              ~placement:d.Lemur.Deployment.placement ()
          in
          let after = Classifier.stats () in
          let lookups =
            after.Classifier.linear_lookups + after.Classifier.tss_lookups
            + after.Classifier.computed_lookups
            - before.Classifier.linear_lookups - before.Classifier.tss_lookups
            - before.Classifier.computed_lookups
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s classified packets" (Classifier.algo_name algo))
            true (lookups > 0);
          let sr =
            Lemur_dataplane.Sim.run ~seed:5 ~config:d.Lemur.Deployment.config
              ~placement:d.Lemur.Deployment.placement ()
          in
          let v =
            Lemur_check.Convergence.check
              ~pkt_bytes:d.Lemur.Deployment.config.Lemur_placer.Plan.pkt_bytes
              ~engine:er ~sim:sr ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s converges: %s" (Classifier.algo_name algo)
               (String.concat "; "
                  (List.map
                     (Format.asprintf "%a"
                        Lemur_check.Convergence.pp_divergence)
                     v.Lemur_check.Convergence.divergences)))
            true
            (Lemur_check.Convergence.ok v))
    Classifier.all_algos

let suite =
  [
    ("generator deterministic", `Quick, test_generator_deterministic);
    ("generator rejects negative size", `Quick, test_generator_negative);
    ("rule corner matches", `Quick, test_corner_matches);
    ("three-way agreement corpus", `Quick, test_agreement_corpus);
    ("mutation: corrupted remainder caught", `Quick, test_mutation_remainder);
    ("cost model orders algorithms", `Quick, test_cost_model_orders);
    ("profiler acl cycles", `Quick, test_profiler_acl_cycles);
    ( "engine/sim converge with classification",
      `Slow,
      test_engine_sim_converge_with_classifier );
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases
