open Lemur_util

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Prng.int t 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = Prng.float t 3.0 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 3.0)
  done

let test_prng_truncated_gaussian () =
  let t = Prng.create ~seed:3 in
  for _ = 1 to 500 do
    let x = Prng.truncated_gaussian t ~mu:10.0 ~sigma:5.0 ~lo:8.0 ~hi:12.0 in
    Alcotest.(check bool) "in [lo, hi]" true (x >= 8.0 && x <= 12.0)
  done

let test_prng_split_independent () =
  let parent = Prng.create ~seed:1 in
  let child = Prng.split parent in
  Alcotest.(check bool) "child differs from parent" true
    (Prng.bits64 child <> Prng.bits64 parent)

let test_prng_unbiased_large_bound () =
  (* Regression for the modulo bias: with bound = 3 * 2^60, the raw
     62-bit draw wraps twice over [0, 2^60), so a bare [mod] lands there
     with probability 1/2 instead of the uniform 1/3. 20k samples give a
     standard error of ~0.33%, so a 2% band cleanly separates the two. *)
  let t = Prng.create ~seed:99 in
  let bound = 3 * (1 lsl 60) in
  let low_cut = 1 lsl 60 in
  let n = 20_000 in
  let low = ref 0 in
  for _ = 1 to n do
    let x = Prng.int t bound in
    Alcotest.(check bool) "in range" true (x >= 0 && x < bound);
    if x < low_cut then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "low third holds 1/3 of the mass (got %.4f)" frac)
    true
    (Float.abs (frac -. (1.0 /. 3.0)) < 0.02)

let test_prng_max_int_bound () =
  let t = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Prng.int t max_int in
    Alcotest.(check bool) "non-negative" true (x >= 0)
  done

let test_stats_nan_rejected () =
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "percentile rejects NaN data" true
    (raises (fun () -> Stats.percentile 50.0 [ 1.0; Float.nan; 2.0 ]));
  Alcotest.(check bool) "percentile rejects NaN p" true
    (raises (fun () -> Stats.percentile Float.nan [ 1.0; 2.0 ]));
  Alcotest.(check bool) "percentile rejects p > 100" true
    (raises (fun () -> Stats.percentile 101.0 [ 1.0 ]));
  Alcotest.(check bool) "summarize rejects NaN" true
    (raises (fun () -> Stats.summarize [ Float.nan ]));
  Alcotest.(check bool) "mean rejects NaN" true
    (raises (fun () -> Stats.mean [ 0.0; Float.nan ]));
  (* infinities are data, not poison: they still flow through *)
  Alcotest.(check (float 1e-9)) "infinite max ok" infinity
    (Stats.summarize [ 1.0; infinity ]).Stats.max

let test_units () =
  Alcotest.(check (float 1e-6)) "gbps" 1e9 (Units.gbps 1.0);
  Alcotest.(check (float 1e-6)) "roundtrip" 42.0 (Units.to_gbps (Units.gbps 42.0));
  Alcotest.(check (float 1e-6)) "us" 45_000.0 (Units.us 45.0);
  (* 1 Gbps of 1500-byte packets is ~83.3 kpps *)
  let pps = Units.pps_of_bps ~pkt_bytes:1500 (Units.gbps 1.0) in
  Alcotest.(check (float 1.0)) "pps" 83333.3 pps;
  Alcotest.(check (float 1e-3))
    "pps inverse" (Units.gbps 1.0)
    (Units.bps_of_pps ~pkt_bytes:1500 pps)

let test_cartesian () =
  let got = Listx.cartesian [ [ 1; 2 ]; [ 3 ]; [ 4; 5 ] ] in
  Alcotest.(check (list (list int)))
    "product"
    [ [ 1; 3; 4 ]; [ 1; 3; 5 ]; [ 2; 3; 4 ]; [ 2; 3; 5 ] ]
    (List.sort compare got);
  Alcotest.(check (list (list int))) "empty product" [ [] ] (Listx.cartesian [])

let test_compositions () =
  Alcotest.(check (list (list int)))
    "3 into 2" [ [ 1; 2 ]; [ 2; 1 ] ] (Listx.compositions 3 2);
  Alcotest.(check int) "5 into 3 count" 6 (List.length (Listx.compositions 5 3));
  Alcotest.(check (list (list int))) "0 into 0" [ [] ] (Listx.compositions 0 0);
  Alcotest.(check (list (list int))) "too few" [] (Listx.compositions 2 3);
  (* weak compositions of n into k: C(n+k-1, k-1) *)
  Alcotest.(check int) "weak 4 into 3" 15 (List.length (Listx.weak_compositions 4 3))

let test_group_consecutive () =
  let got = Listx.group_consecutive (fun a b -> a = b) [ 1; 1; 2; 3; 3; 3; 1 ] in
  Alcotest.(check (list (list int)))
    "runs" [ [ 1; 1 ]; [ 2 ]; [ 3; 3; 3 ]; [ 1 ] ] got;
  Alcotest.(check (list (list int))) "empty" [] (Listx.group_consecutive ( = ) [])

let test_max_by () =
  Alcotest.(check (option int)) "max" (Some 9)
    (Listx.max_by float_of_int [ 3; 9; 1 ]);
  Alcotest.(check (option int)) "empty" None (Listx.max_by float_of_int []);
  Alcotest.(check (option int)) "min" (Some 1)
    (Listx.min_by float_of_int [ 3; 9; 1 ])

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check int) "n" 4 s.Stats.n

let test_linear_fit () =
  let slope, intercept = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check (float 1e-9)) "slope" 2.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile 100.0 xs)

let test_texttable () =
  let t = Texttable.create ~headers:[ "a"; "bb" ] in
  Texttable.add_row t [ "1"; "2" ];
  Texttable.add_row t [ "333" ];
  let rendered = Texttable.render t in
  Alcotest.(check bool) "contains rule" true
    (String.length rendered > 0 && String.contains rendered '-');
  Alcotest.(check bool) "pads short rows" true
    (List.length (String.split_on_char '\n' rendered) = 4)

let test_pool_basic () =
  (* ordered results, typed per-job errors, no early abort *)
  (match Pool.all (Pool.map ~domains:1 (fun x -> x * x) [ 1; 2; 3 ]) with
  | Ok l -> Alcotest.(check (list int)) "squares in order" [ 1; 4; 9 ] l
  | Error e -> Alcotest.failf "sequential map failed: %s" (Pool.error_to_string e));
  let results =
    Pool.map ~domains:3
      (fun x -> if x = 2 then failwith "boom" else x * 10)
      [ 1; 2; 3 ]
  in
  (match results with
  | [ Ok 10; Error e; Ok 30 ] ->
      Alcotest.(check int) "error carries job index" 1 e.Pool.job_index;
      Alcotest.(check bool) "error carries the message" true
        (let n = "boom" and h = e.Pool.message in
         let nl = String.length n and hl = String.length h in
         let rec go i = i + nl <= hl && (String.sub h i nl = n || go (i + 1)) in
         go 0)
  | _ -> Alcotest.fail "one failing job must not poison its neighbours");
  (match Pool.all results with
  | Ok _ -> Alcotest.fail "all must surface the first error"
  | Error e -> Alcotest.(check int) "first error" 1 e.Pool.job_index);
  (* empty input, and a worker-side nested map (runs inline, no deadlock) *)
  (match Pool.map ~domains:4 (fun x -> x) [] with
  | [] -> ()
  | _ -> Alcotest.fail "empty input maps to empty output");
  match
    Pool.all
      (Pool.map ~domains:2
         (fun x -> Pool.all (Pool.map ~domains:2 (fun y -> x + y) [ 1; 2 ]))
         [ 10; 20 ])
  with
  | Ok [ Ok [ 11; 12 ]; Ok [ 21; 22 ] ] -> ()
  | _ -> Alcotest.fail "nested map must run inline and preserve order"

let test_pool_skewed_deterministic () =
  (* Chunked work-stealing must keep results slotted by index even when
     one item costs ~100x its neighbours, so the parallel order matches
     the sequential one byte-for-byte. *)
  let spin iters x =
    let h = ref x in
    for _ = 1 to iters do
      h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF;
      h := !h lxor (!h lsr 13)
    done;
    !h
  in
  let items =
    List.init 32 (fun i ->
        (i, if i = 0 || i = 31 then 200_000 else 2_000))
  in
  let run jobs =
    List.map
      (function Ok v -> v | Error _ -> -1)
      (Pool.map ~domains:jobs (fun (i, iters) -> spin iters (i + 1)) items)
  in
  Alcotest.(check (list int)) "skewed corpus agrees -j 1 vs -j 4" (run 1)
    (run 4)

let test_pool_reuse_and_busy () =
  (* The pool grows monotonically and a smaller -j reuses it with fewer
     active workers instead of tearing domains down. *)
  ignore (Pool.map ~domains:4 (fun x -> x + 1) [ 1; 2; 3; 4; 5 ]);
  let grown = Pool.pool_size () in
  Alcotest.(check bool) "pool spawned workers for -j 4" true (grown >= 3);
  ignore (Pool.map ~domains:2 (fun x -> x + 1) [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check int) "smaller -j keeps the pool" grown (Pool.pool_size ());
  Pool.reset_busy ();
  let work x =
    let h = ref x in
    for _ = 1 to 100_000 do
      h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF
    done;
    !h
  in
  ignore (Pool.map ~domains:2 work [ 1; 2; 3; 4 ]);
  let busy = Pool.busy_ns () in
  Alcotest.(check int) "busy slots cover submitter + workers"
    (1 + Pool.pool_size ())
    (Array.length busy);
  Alcotest.(check bool) "some executor recorded busy time" true
    (Array.exists (fun b -> b > 0) busy)

let test_timing_clamp () =
  Alcotest.(check (float 0.0)) "forward duration" 1.5
    (Timing.duration ~start:1.0 ~stop:2.5);
  (* a clock step backwards must clamp to zero, never go negative *)
  Alcotest.(check (float 0.0)) "backwards clamps to 0" 0.0
    (Timing.duration ~start:5.0 ~stop:3.0);
  Alcotest.(check bool) "elapsed is non-negative" true
    (Timing.elapsed (Timing.now () +. 60.0) >= 0.0)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"pool map: domains 1 and 4 agree" ~count:30
      (pair (list_of_size (Gen.int_range 0 40) small_int) (int_range 0 5))
      (fun (xs, fail_mod) ->
        let f x =
          if fail_mod > 0 && x mod fail_mod = 0 then failwith "planned"
          else (x * 7) - 3
        in
        let strip = List.map (Result.map_error (fun e -> e.Pool.job_index)) in
        strip (Pool.map ~domains:1 f xs) = strip (Pool.map ~domains:4 f xs));
    Test.make ~name:"compositions sum to n" ~count:100
      (pair (int_range 1 8) (int_range 1 4))
      (fun (n, k) ->
        List.for_all
          (fun parts ->
            List.fold_left ( + ) 0 parts = n && List.length parts = k)
          (Listx.compositions n k));
    Test.make ~name:"cartesian size is product of sizes" ~count:50
      (list_of_size (Gen.int_range 0 3) (list_of_size (Gen.int_range 1 4) small_int))
      (fun lists ->
        List.length (Listx.cartesian lists)
        = List.fold_left (fun acc l -> acc * List.length l) 1 lists);
    Test.make ~name:"percentile within min/max" ~count:100
      (pair (list_of_size (Gen.int_range 1 20) (float_range 0.0 100.0))
         (float_range 0.0 100.0))
      (fun (xs, p) ->
        let v = Stats.percentile p xs in
        let s = Stats.summarize xs in
        v >= s.Stats.min && v <= s.Stats.max);
  ]

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng truncated gaussian" `Quick test_prng_truncated_gaussian;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng unbiased at 3*2^60" `Quick test_prng_unbiased_large_bound;
    Alcotest.test_case "prng max_int bound" `Quick test_prng_max_int_bound;
    Alcotest.test_case "stats reject NaN" `Quick test_stats_nan_rejected;
    Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "cartesian" `Quick test_cartesian;
    Alcotest.test_case "compositions" `Quick test_compositions;
    Alcotest.test_case "group_consecutive" `Quick test_group_consecutive;
    Alcotest.test_case "max_by/min_by" `Quick test_max_by;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "linear fit" `Quick test_linear_fit;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "texttable" `Quick test_texttable;
    Alcotest.test_case "pool map" `Quick test_pool_basic;
    Alcotest.test_case "pool skewed determinism" `Quick test_pool_skewed_deterministic;
    Alcotest.test_case "pool reuse and busy accounting" `Quick test_pool_reuse_and_busy;
    Alcotest.test_case "timing clamp" `Quick test_timing_clamp;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases
