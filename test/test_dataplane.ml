open Lemur_placer
open Lemur_dataplane

let config () = Plan.default_config (Lemur_topology.Topology.testbed ())

let place c inputs =
  match Strategy.place Strategy.Lemur c inputs with
  | Strategy.Placed p -> p
  | Strategy.Infeasible { reason } -> Alcotest.failf "infeasible: %s" reason

let simple_placement ?(t_min = 4e9) c =
  let g = Lemur_spec.Loader.chain_of_string ~name:"c" "Encrypt -> IPv4Fwd" in
  place c [ { Plan.id = "c"; graph = g; slo = Lemur_slo.Slo.make ~t_min ~t_max:100e9 () } ]

let test_heap () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (fun (k, v) -> Heap.push h k v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  Alcotest.(check int) "size" 3 (Heap.size h);
  Alcotest.(check (option (pair (float 0.0) string))) "min first" (Some (1.0, "a")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "then b" (Some (2.0, "b")) (Heap.pop h);
  Heap.push h 0.5 "z";
  Alcotest.(check (option (pair (float 0.0) string))) "reorders" (Some (0.5, "z")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "last" (Some (3.0, "c")) (Heap.pop h);
  Alcotest.(check bool) "drained" true (Heap.pop h = None)

let test_heap_property () =
  let prng = Lemur_util.Prng.create ~seed:11 in
  let h = Heap.create () in
  for _ = 1 to 500 do
    Heap.push h (Lemur_util.Prng.float prng 1000.0) ()
  done;
  let prev = ref neg_infinity in
  let sorted = ref true in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (k, ()) ->
        if k < !prev then sorted := false;
        prev := k;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "pops in order" true !sorted

let test_heap_fifo_ties () =
  (* Equal keys must pop in insertion order: simultaneous events are
     served in the order they were scheduled. *)
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 5.0 v) [ "first"; "second"; "third" ];
  Heap.push h 1.0 "early";
  List.iter (fun v -> Heap.push h 5.0 v) [ "fourth"; "fifth" ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string))
    "ties pop FIFO"
    [ "early"; "first"; "second"; "third"; "fourth"; "fifth" ]
    (List.rev !order)

let test_heap_fifo_property () =
  (* Random interleaving of a few key values: among equal keys,
     insertion order is preserved in the pop sequence. *)
  let prng = Lemur_util.Prng.create ~seed:3 in
  let h = Heap.create () in
  for i = 0 to 499 do
    Heap.push h (float_of_int (Lemur_util.Prng.int prng 5)) i
  done;
  let prev_key = ref neg_infinity and prev_seq = ref (-1) in
  let ok = ref true in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (k, seq) ->
        if k < !prev_key then ok := false;
        if k = !prev_key && seq < !prev_seq then ok := false;
        prev_key := k;
        prev_seq := seq;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "sorted, FIFO within equal keys" true !ok

let test_determinism () =
  let c = config () in
  let p = simple_placement c in
  let r1 = Sim.run ~seed:5 ~config:c ~placement:p () in
  let r2 = Sim.run ~seed:5 ~config:c ~placement:p () in
  Alcotest.(check (float 1e-6)) "same aggregate" r1.Sim.aggregate_throughput
    r2.Sim.aggregate_throughput

let test_measured_tracks_predicted () =
  (* §5.2: predicted throughput closely matches measured, and
     predictions are conservative (measured >= ~predicted). *)
  let c = config () in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 1; 2; 3; 4 ] in
  let p = place c inputs in
  let r = Sim.run ~config:c ~placement:p () in
  let predicted = p.Strategy.total_rate in
  let measured = r.Sim.aggregate_throughput in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.2fG within [0.95, 1.15] of predicted %.2fG"
       (measured /. 1e9) (predicted /. 1e9))
    true
    (measured > 0.95 *. predicted && measured < 1.15 *. predicted)

let test_slo_satisfied () =
  let c = config () in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:1.0 [ 1; 2; 3 ] in
  let p = place c inputs in
  let r = Sim.run ~config:c ~placement:p () in
  List.iter
    (fun cr ->
      let report =
        List.find
          (fun rep -> rep.Strategy.plan.Plan.input.Plan.id = cr.Sim.chain_id)
          p.Strategy.chain_reports
      in
      let t_min = report.Strategy.plan.Plan.input.Plan.slo.Lemur_slo.Slo.t_min in
      Alcotest.(check bool)
        (Printf.sprintf "%s delivers >= t_min" cr.Sim.chain_id)
        true
        (cr.Sim.delivered >= t_min *. 0.97))
    r.Sim.chains

let test_delivered_bounded_by_offered () =
  let c = config () in
  let p = simple_placement c in
  let r = Sim.run ~config:c ~placement:p () in
  List.iter
    (fun cr ->
      Alcotest.(check bool) "delivered <= offered (within batching noise)" true
        (cr.Sim.delivered <= cr.Sim.offered *. 1.02))
    r.Sim.chains

let test_overload_drops () =
  (* Overdriving far past capacity must drop, not inflate throughput. *)
  let c = config () in
  let p = simple_placement c in
  let r = Sim.run ~overdrive:2.0 ~config:c ~placement:p () in
  let cr = List.hd r.Sim.chains in
  Alcotest.(check bool) "drops occurred" true (cr.Sim.batches_dropped > 0);
  let capacity = (List.hd p.Strategy.chain_reports).Strategy.capacity in
  Alcotest.(check bool) "delivered near capacity, not offered" true
    (cr.Sim.delivered < capacity *. 1.1)

let test_latency_scales_with_bounces () =
  (* A chain bouncing more measures higher latency (at low load). *)
  let c = config () in
  let mk text =
    let g = Lemur_spec.Loader.chain_of_string ~name:"c" text in
    place c [ { Plan.id = "c"; graph = g; slo = Lemur_slo.Slo.make ~t_min:1e8 ~t_max:100e9 () } ]
  in
  let measure p = Sim.run ~overdrive:0.5 ~config:c ~placement:p () in
  let one_bounce = measure (mk "Encrypt -> IPv4Fwd") in
  let two_bounce = measure (mk "Encrypt -> NAT -> Decrypt -> IPv4Fwd") in
  let lat r = (List.hd r.Sim.chains).Sim.mean_latency in
  Alcotest.(check bool) "two bounces slower" true
    (lat two_bounce > lat one_bounce)

let test_token_bucket_enforces_tmax () =
  let c = config () in
  let g = Lemur_spec.Loader.chain_of_string ~name:"c" "Tunnel -> IPv4Fwd" in
  (* all-hardware chain (line rate), capped at 5 Gbps *)
  let slo = Lemur_slo.Slo.make ~t_min:1e9 ~t_max:5e9 () in
  let p = place c [ { Plan.id = "c"; graph = g; slo } ] in
  let r = Sim.run ~overdrive:3.0 ~config:c ~placement:p () in
  let cr = List.hd r.Sim.chains in
  Alcotest.(check bool)
    (Printf.sprintf "tmax enforced (%.2fG <= 5G)" (cr.Sim.delivered /. 1e9))
    true
    (cr.Sim.delivered <= 5.2e9)

let test_traffic_modes () =
  (* Flow churn makes stateful NFs (Dedup) slower, so an overdriven
     chain delivers strictly less under Short_flows. *)
  let c = config () in
  let g = Lemur_spec.Loader.chain_of_string ~name:"c" "Dedup -> IPv4Fwd" in
  let p =
    place c
      [ { Plan.id = "c"; graph = g; slo = Lemur_slo.Slo.make ~t_min:5e8 ~t_max:100e9 () } ]
  in
  let measure traffic =
    (List.hd
       (Sim.run ~overdrive:2.0 ~traffic ~config:c ~placement:p ()).Sim.chains)
      .Sim.delivered
  in
  let long = measure Sim.Long_lived and churn = measure Sim.Short_flows in
  Alcotest.(check bool)
    (Printf.sprintf "churn slower (%.3fG < %.3fG)" (churn /. 1e9) (long /. 1e9))
    true (churn < long)

let test_ofswitch_contention () =
  (* The shared OpenFlow link is a real resource: a chain through the OF
     switch cannot exceed its capacity even when overdriven. *)
  let topo = Lemur_topology.Topology.no_pisa_testbed ~ofswitch:true () in
  let c = { (Plan.default_config topo) with Plan.eval_capabilities = false } in
  let g = Lemur_spec.Loader.chain_of_string ~name:"c" "ACL -> Monitor -> IPv4Fwd" in
  let p =
    place c
      [ { Plan.id = "c"; graph = g; slo = Lemur_slo.Slo.make ~t_min:1e9 ~t_max:100e9 () } ]
  in
  let uses_of =
    List.exists
      (fun r -> r.Strategy.plan.Plan.ofswitch_nodes <> [])
      p.Strategy.chain_reports
  in
  if uses_of then begin
    let r = Sim.run ~overdrive:3.0 ~config:c ~placement:p () in
    let cr = List.hd r.Sim.chains in
    Alcotest.(check bool)
      (Printf.sprintf "capped near the OF capacity (%.1fG)" (cr.Sim.delivered /. 1e9))
      true
      (cr.Sim.delivered <= 41e9)
  end

let test_smartnic_path () =
  let topo = Lemur_topology.Topology.testbed ~smartnic:true () in
  let c = Plan.default_config topo in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 5 ] in
  let p = place c inputs in
  let r = Sim.run ~config:c ~placement:p () in
  let cr = List.hd r.Sim.chains in
  Alcotest.(check bool) "delivers through the NIC" true (cr.Sim.delivered > 1e9)

(* ------------------------------------------------------------------ *)
(* The packet-at-a-time engine                                          *)

let chain_counters (c : Engine.chain_result) =
  ( c.Engine.injected_pkts, c.Engine.delivered_pkts, c.Engine.dropped_pkts,
    c.Engine.shaped_pkts, c.Engine.in_flight_pkts )

let test_engine_determinism () =
  let c = config () in
  let p = simple_placement c in
  let r1 = Engine.run ~seed:5 ~config:c ~placement:p () in
  let r2 = Engine.run ~seed:5 ~config:c ~placement:p () in
  Alcotest.(check (float 1e-6)) "same aggregate" r1.Engine.aggregate_throughput
    r2.Engine.aggregate_throughput;
  Alcotest.(check int) "same hop count" r1.Engine.total_served
    r2.Engine.total_served;
  List.iter2
    (fun a b ->
      Alcotest.(check (pair (pair int int) (pair int (pair int int))))
        "same per-chain counters"
        (let i, d, dr, s, f = chain_counters a in ((i, d), (dr, (s, f))))
        (let i, d, dr, s, f = chain_counters b in ((i, d), (dr, (s, f)))))
    r1.Engine.chains r2.Engine.chains

let test_engine_tracks_sim () =
  (* The tentpole invariant, smoke-sized: on the paper's testbed the
     packet engine and the batch-rate model measure the same chains
     within a few percent. The full-tolerance check lives in
     Lemur_check.Convergence (test_check.ml) and in `lemur fuzz`. *)
  let c = config () in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 1; 2; 3 ] in
  let p = place c inputs in
  let er = Engine.run ~seed:9 ~overdrive:1.0 ~config:c ~placement:p () in
  let sr = Sim.run ~seed:9 ~overdrive:1.0 ~config:c ~placement:p () in
  List.iter
    (fun (ec : Engine.chain_result) ->
      match
        List.find_opt
          (fun (sc : Sim.chain_result) -> sc.Sim.chain_id = ec.Engine.chain_id)
          sr.Sim.chains
      with
      | None -> Alcotest.failf "chain %s missing from sim" ec.Engine.chain_id
      | Some sc ->
          let rel =
            Float.abs (ec.Engine.delivered -. sc.Sim.delivered)
            /. Float.max 1.0 sc.Sim.delivered
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: engine %.3fG vs sim %.3fG (rel %.3f)"
               ec.Engine.chain_id
               (ec.Engine.delivered /. 1e9)
               (sc.Sim.delivered /. 1e9)
               rel)
            true (rel < 0.08))
    er.Engine.chains

let test_engine_overload_conserves () =
  (* Overdriven far past capacity the engine must tail-drop — and the
     conservation identity must survive the carnage. *)
  let c = config () in
  let p = simple_placement c in
  let r = Engine.run ~overdrive:3.0 ~config:c ~placement:p () in
  let cr = List.hd r.Engine.chains in
  Alcotest.(check bool) "drops occurred" true (cr.Engine.dropped_pkts > 0);
  Alcotest.(check bool) "identity holds under overload" true
    (Engine.conserved r);
  (* The placer's capacity is worst-case-cycle pessimistic, so the
     engine (sampling the profiled distribution) can legitimately beat
     it — but at 3x drive it must shed most of the offered load. *)
  Alcotest.(check bool) "delivered well below offered" true
    (cr.Engine.delivered < cr.Engine.offered *. 0.75)

let test_engine_conservation_aggregate () =
  (* injected = delivered + dropped + in_flight per chain AND summed,
     at both gentle and punishing drive. *)
  let c = config () in
  let inputs = Lemur.Chains.inputs_for_delta c ~delta:0.5 [ 1; 2; 4 ] in
  let p = place c inputs in
  List.iter
    (fun overdrive ->
      let r = Engine.run ~overdrive ~config:c ~placement:p () in
      Alcotest.(check bool)
        (Printf.sprintf "per-chain identity at overdrive %.1f" overdrive)
        true (Engine.conserved r);
      let sum f = List.fold_left (fun a cr -> a + f cr) 0 r.Engine.chains in
      Alcotest.(check int)
        (Printf.sprintf "aggregate identity at overdrive %.1f" overdrive)
        (sum (fun cr -> cr.Engine.injected_pkts))
        (sum (fun cr -> cr.Engine.delivered_pkts)
        + sum (fun cr -> cr.Engine.dropped_pkts)
        + sum (fun cr -> cr.Engine.in_flight_pkts)))
    [ 1.0; 2.5 ]

(* ------------------------------------------------------------------ *)
(* Ring properties                                                      *)

(* A random op tape: [true] = push the next integer from a counter,
   [false] = pop. Checked against a plain FIFO queue model. *)
let ring_qcheck_cases =
  let open QCheck in
  let ops_gen =
    Gen.(pair (int_range 1 8) (list_size (int_range 0 200) bool))
  in
  [
    Test.make ~name:"ring agrees with a queue model (FIFO + conservation)"
      ~count:200 (make ops_gen)
      (fun (capacity, ops) ->
        let r = Ring.create ~capacity ~dummy:(-1) in
        let model = Queue.create () in
        let next = ref 0 in
        let ok = ref true in
        List.iter
          (fun op ->
            if op then begin
              let accepted = Ring.push r !next in
              let model_accepts = Queue.length model < capacity in
              if accepted <> model_accepts then ok := false;
              if accepted then Queue.add !next model;
              incr next
            end
            else begin
              let popped = Ring.pop r in
              let expected =
                if Queue.is_empty model then None else Some (Queue.pop model)
              in
              if popped <> expected then ok := false
            end;
            if Ring.length r <> Queue.length model then ok := false;
            if Ring.pushed r - Ring.popped r <> Ring.length r then ok := false;
            if Ring.is_empty r <> (Queue.length model = 0) then ok := false;
            if Ring.is_full r <> (Queue.length model = capacity) then
              ok := false)
          ops;
        !ok);
    Test.make ~name:"ring wrap-around preserves FIFO" ~count:100
      (make Gen.(pair (int_range 1 6) (int_range 10 300)))
      (fun (capacity, rounds) ->
        (* Fill/drain cycles force head/tail to wrap many times. *)
        let r = Ring.create ~capacity ~dummy:(-1) in
        let next = ref 0 and expect = ref 0 in
        let ok = ref true in
        for _ = 1 to rounds do
          while Ring.push r !next do
            incr next
          done;
          (match Ring.peek r with
          | Some v when v = !expect -> ()
          | _ -> ok := false);
          let rec drain () =
            match Ring.pop r with
            | None -> ()
            | Some v ->
                if v <> !expect then ok := false;
                incr expect;
                drain ()
          in
          drain ()
        done;
        !ok && !next = !expect);
    Test.make ~name:"ring full/empty edges" ~count:50
      (make Gen.(int_range 1 8))
      (fun capacity ->
        let r = Ring.create ~capacity ~dummy:0 in
        let filled = ref 0 in
        while Ring.push r !filled do
          incr filled
        done;
        (* exactly capacity accepted, then refusal without corruption *)
        !filled = capacity && Ring.is_full r
        && (not (Ring.push r 999))
        && Ring.peek r = Some 0
        && Ring.length r = capacity
        &&
        (for _ = 1 to capacity do
           ignore (Ring.pop r)
         done;
         Ring.is_empty r && Ring.pop r = None && Ring.peek r = None
         && Ring.pushed r = capacity
         && Ring.popped r = capacity));
    Test.make ~name:"ring batch ops agree with 1-at-a-time" ~count:100
      (make
         Gen.(
           triple (int_range 1 8)
             (list_size (int_range 0 20) (int_range 0 15))
             (int_range 1 16)))
      (fun (capacity, pushes, batch) ->
        (* push_batch/pop_batch must accept/return exactly the prefix
           the scalar ops would. *)
        let a = Ring.create ~capacity ~dummy:(-1) in
        let b = Ring.create ~capacity ~dummy:(-1) in
        let arr = Array.of_list pushes in
        let accepted_batch = Ring.push_batch a arr in
        let accepted_scalar = ref 0 in
        (try
           Array.iter
             (fun v ->
               if Ring.push b v then incr accepted_scalar
               else raise Exit)
             arr
         with Exit -> ());
        let out = Array.make batch (-1) in
        let popped_batch = Ring.pop_batch a out in
        let popped_scalar = ref [] in
        for _ = 1 to batch do
          match Ring.pop b with
          | Some v -> popped_scalar := v :: !popped_scalar
          | None -> ()
        done;
        accepted_batch = !accepted_scalar
        && popped_batch = List.length !popped_scalar
        && Array.to_list (Array.sub out 0 popped_batch)
           = List.rev !popped_scalar
        && Ring.length a = Ring.length b);
  ]

let suite =
  [
    Alcotest.test_case "event heap" `Quick test_heap;
    Alcotest.test_case "heap ordering property" `Quick test_heap_property;
    Alcotest.test_case "heap FIFO on equal keys" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap FIFO property" `Quick test_heap_fifo_property;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "measured tracks predicted" `Slow test_measured_tracks_predicted;
    Alcotest.test_case "SLOs hold on the dataplane" `Slow test_slo_satisfied;
    Alcotest.test_case "delivered <= offered" `Quick test_delivered_bounded_by_offered;
    Alcotest.test_case "overload drops" `Quick test_overload_drops;
    Alcotest.test_case "latency scales with bounces" `Quick test_latency_scales_with_bounces;
    Alcotest.test_case "token bucket enforces t_max" `Quick test_token_bucket_enforces_tmax;
    Alcotest.test_case "traffic modes" `Quick test_traffic_modes;
    Alcotest.test_case "ofswitch contention" `Quick test_ofswitch_contention;
    Alcotest.test_case "smartnic path" `Quick test_smartnic_path;
    Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
    Alcotest.test_case "engine tracks sim" `Slow test_engine_tracks_sim;
    Alcotest.test_case "engine overload conserves" `Quick
      test_engine_overload_conserves;
    Alcotest.test_case "engine conservation aggregate" `Slow
      test_engine_conservation_aggregate;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) ring_qcheck_cases
