(* Tests for lemur_check: the placement oracle, the deterministic
   scenario generator, and the differential fuzz loop.

   The oracle mutation tests hand-break real placements one constraint
   at a time and assert that the oracle rejects each with the expected
   diagnostic — proving the oracle actually discriminates, not just
   rubber-stamps whatever the placer emits. *)
open Lemur_placer
module Oracle = Lemur_check.Oracle
module Scenario = Lemur_check.Scenario
module Fuzz = Lemur_check.Fuzz

let cfg () = Plan.default_config (Lemur_topology.Topology.testbed ())

let mk id text slo =
  {
    Plan.id;
    graph = Lemur_spec.Loader.chain_of_string ~name:id text;
    slo;
  }

let slo tmin tmax = Lemur_slo.Slo.make ~t_min:tmin ~t_max:tmax ()

let place_lemur c inputs =
  match Strategy.place Strategy.Lemur c inputs with
  | Strategy.Placed p -> p
  | Strategy.Infeasible { reason } ->
      Alcotest.failf "placement unexpectedly infeasible: %s" reason

let kinds = function
  | Ok () -> []
  | Error vs -> List.map Oracle.kind_name vs

let check_has c p kind =
  let res = Oracle.check c p in
  Alcotest.(check bool)
    (Printf.sprintf "oracle rejects with %s (got: %s)" kind
       (String.concat "," (kinds res)))
    true
    (List.mem kind (kinds res))

let check_ok c p =
  match Oracle.check c p with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "oracle rejected a valid placement: %a"
        (Fmt.list ~sep:Fmt.comma Oracle.pp_violation)
        vs

(* Rebuild the aggregate fields after mutating chain reports, so that a
   mutation test trips exactly its targeted constraint and not the
   bookkeeping cross-checks. *)
let with_reports p reports =
  let total_rate =
    List.fold_left (fun a r -> a +. r.Strategy.rate) 0.0 reports
  in
  let total_marginal =
    List.fold_left
      (fun a r ->
        a
        +. Float.max 0.0
             (r.Strategy.rate
             -. r.Strategy.plan.Plan.input.Plan.slo.Lemur_slo.Slo.t_min))
      0.0 reports
  in
  let cores_used =
    List.fold_left
      (fun a r -> a + Array.fold_left ( + ) 0 r.Strategy.cores)
      0 reports
  in
  { p with Strategy.chain_reports = reports; total_rate; total_marginal; cores_used }

let map_report f p = with_reports p (List.map f p.Strategy.chain_reports)

(* ------------------------------------------------------------------ *)
(* Valid placements are accepted                                        *)

let test_accepts_valid_placements () =
  List.iter
    (fun seed ->
      let sc = Scenario.generate ~quick:true ~seed () in
      let c = Scenario.config sc in
      let inputs = Scenario.inputs sc in
      List.iter
        (fun s ->
          match Strategy.place s c inputs with
          | Strategy.Infeasible _ -> ()
          | Strategy.Placed p -> check_ok c p)
        Strategy.all)
    [ 1; 7; 21; 42; 97 ]

let test_accepts_valid_deployment () =
  match
    Lemur.Deployment.of_spec
      "chain web slo(tmin='1Gbps', tmax='100Gbps') = ACL -> Encrypt -> IPv4Fwd"
  with
  | Error e -> Alcotest.failf "deploy failed: %s" e
  | Ok d -> (
      match Oracle.check_deployment d with
      | Ok () -> ()
      | Error vs ->
          Alcotest.failf "oracle rejected a real deployment: %a"
            (Fmt.list ~sep:Fmt.comma Oracle.pp_violation)
            vs)

(* ------------------------------------------------------------------ *)
(* Hand-broken placements: one distinct diagnostic per mutation         *)

let test_rejects_stage_overflow () =
  let c = cfg () in
  (* 8 NATs at 2 dependent tables each want ~16 stages; the Tofino
     budget is 12. *)
  let input =
    mk "ovf" (String.concat " -> " (List.init 8 (fun _ -> "NAT")))
      Lemur_slo.Slo.best_effort
  in
  let plan = Plan.elaborate c input (Array.make 8 Plan.Switch) in
  let report =
    {
      Strategy.plan;
      cores = [||];
      seg_server = [];
      capacity = infinity;
      rate = 1e9;
      latency = 0.0;
      bounces = 0;
    }
  in
  let p =
    with_reports
      {
        Strategy.strategy = Strategy.Lemur;
        chain_reports = [];
        total_rate = 0.0;
        total_marginal = 0.0;
        stages_used = 0;
        cores_used = 0;
        elapsed = 0.0;
      }
      [ report ]
  in
  check_has c p "stage_overflow"

let encrypt_placement c tmin =
  place_lemur c [ mk "e" "Encrypt" (slo tmin (Lemur_util.Units.gbps 100.0)) ]

let test_rejects_core_overallocation () =
  let c = cfg () in
  let p = encrypt_placement c 1e9 in
  let p =
    map_report
      (fun r -> { r with Strategy.cores = Array.map (fun _ -> 100) r.Strategy.cores })
      p
  in
  check_has c p "core_overallocation"

let test_rejects_link_oversubscription () =
  let c = cfg () in
  let p = encrypt_placement c 1e9 in
  (* 50 Gbps across a 40 Gbps server NIC; the capacity check fires too
     (no core allocation reaches 50 Gbps), but the link violation is
     what this mutation is about. *)
  let p = map_report (fun r -> { r with Strategy.rate = 50e9 }) p in
  check_has c p "link_oversubscribed"

let test_rejects_tmin_violation () =
  let c = cfg () in
  let p = encrypt_placement c 2e9 in
  let p = map_report (fun r -> { r with Strategy.rate = 0.5e9 }) p in
  check_has c p "tmin_violated"

let test_rejects_tmax_violation () =
  let c = cfg () in
  (* All-switch chain: capacity is effectively the ToR port, so a rate
     above t_max violates nothing else. *)
  let input = mk "sw" "ACL -> NAT" (slo 1e9 10e9) in
  let plan = Plan.elaborate c input [| Plan.Switch; Plan.Switch |] in
  let report =
    {
      Strategy.plan;
      cores = [||];
      seg_server = [];
      capacity = infinity;
      rate = 20e9;
      latency = 0.0;
      bounces = 0;
    }
  in
  let p =
    with_reports
      {
        Strategy.strategy = Strategy.Lemur;
        chain_reports = [];
        total_rate = 0.0;
        total_marginal = 0.0;
        stages_used = 0;
        cores_used = 0;
        elapsed = 0.0;
      }
      [ report ]
  in
  (match Stagecheck.check c [ plan ] with
  | Stagecheck.Fits n ->
      let p = { p with Strategy.stages_used = n } in
      check_has c p "tmax_violated"
  | _ -> Alcotest.fail "ACL -> NAT should fit the switch")

let test_rejects_routing_mismatch () =
  let c = cfg () in
  let inputs = [ mk "c" "ACL -> Encrypt" (slo 1e9 100e9) ] in
  let deploy strategy =
    match Lemur.Deployment.deploy ~strategy c inputs with
    | Ok d -> d
    | Error e -> Alcotest.failf "deploy failed: %s" e
  in
  let on_switch = deploy Strategy.Lemur in
  let on_server = deploy Strategy.Sw_preferred in
  (* Sanity: the two placements actually route differently. *)
  let locs d =
    List.concat_map
      (fun r -> Array.to_list r.Strategy.plan.Plan.locs)
      d.Lemur.Deployment.placement.Strategy.chain_reports
  in
  Alcotest.(check bool) "placements differ" true (locs on_switch <> locs on_server);
  (* The artifact compiled for one placement must not verify against the
     other. *)
  let res =
    Oracle.check ~artifact:on_switch.Lemur.Deployment.artifact c
      on_server.Lemur.Deployment.placement
  in
  Alcotest.(check bool)
    (Printf.sprintf "routing mismatch detected (got: %s)"
       (String.concat "," (kinds res)))
    true
    (List.mem "routing_mismatch" (kinds res))

(* ------------------------------------------------------------------ *)
(* Scenario generator                                                   *)

let scenario_fingerprint sc = Format.asprintf "%a" Scenario.pp sc

let test_scenario_deterministic () =
  List.iter
    (fun seed ->
      let a = Scenario.generate ~quick:true ~seed () in
      let b = Scenario.generate ~quick:true ~seed () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d replays identically" seed)
        (scenario_fingerprint a) (scenario_fingerprint b))
    [ 1; 2; 333; 1518 ];
  Alcotest.(check bool) "different seeds differ" true
    (scenario_fingerprint (Scenario.generate ~quick:true ~seed:1 ())
    <> scenario_fingerprint (Scenario.generate ~quick:true ~seed:2 ()))

let test_scenario_inputs_well_formed () =
  List.iter
    (fun seed ->
      let sc = Scenario.generate ~quick:true ~seed () in
      let inputs = Scenario.inputs sc in
      Alcotest.(check bool) "at least one chain" true (inputs <> []);
      List.iter
        (fun i ->
          let s = i.Plan.slo in
          Alcotest.(check bool) "t_min <= t_max" true
            (s.Lemur_slo.Slo.t_min <= s.Lemur_slo.Slo.t_max);
          Alcotest.(check bool) "t_min finite" true
            (Float.is_finite s.Lemur_slo.Slo.t_min))
        inputs)
    (List.init 20 (fun i -> i + 1))

let test_shrink_preserves_failure () =
  (* An artificial predicate stands in for a real differential failure:
     shrinking must preserve it while never growing the scenario. *)
  let fails sc = List.length sc.Scenario.sc_chains >= 2 in
  let seed =
    let rec find s =
      if s > 200 then Alcotest.fail "no 2-chain quick scenario in 200 seeds"
      else if fails (Scenario.generate ~quick:true ~seed:s ()) then s
      else find (s + 1)
    in
    find 1
  in
  let sc = Scenario.generate ~quick:true ~seed () in
  let shrunk = Scenario.shrink ~fails sc in
  Alcotest.(check bool) "shrunk scenario still fails" true (fails shrunk);
  Alcotest.(check bool) "shrinking never grows the scenario" true
    (Scenario.size shrunk <= Scenario.size sc);
  Alcotest.(check int) "chain count is minimal for this predicate" 2
    (List.length shrunk.Scenario.sc_chains)

(* ------------------------------------------------------------------ *)
(* The fuzz loop itself                                                 *)

let test_quick_fuzz_clean () =
  let summary = Fuzz.run ~quick:true ~sim:true ~seed:1 ~count:25 () in
  Alcotest.(check int) "25 scenarios" 25 summary.Fuzz.scenarios;
  Alcotest.(check bool)
    (Format.asprintf "no failures:@ %a" Fuzz.pp_summary summary)
    true (Fuzz.ok summary);
  Alcotest.(check bool) "placements were actually checked" true
    (summary.Fuzz.placements_checked > 50)

let test_fuzz_parallel_digest () =
  (* The -j contract: identical summary and digest at any domain count,
     including when the max-failures cutoff truncates the run. *)
  let run jobs = Fuzz.run ~quick:true ~sim:true ~jobs ~seed:1 ~count:40 () in
  let seq = run 1 and par = run 3 in
  Alcotest.(check string) "digest invariant under -j" seq.Fuzz.digest
    par.Fuzz.digest;
  Alcotest.(check int) "same scenario count" seq.Fuzz.scenarios
    par.Fuzz.scenarios;
  Alcotest.(check int) "same placements" seq.Fuzz.placements_checked
    par.Fuzz.placements_checked;
  Alcotest.(check bool) "digest is non-empty hex" true
    (String.length seq.Fuzz.digest = 32)

let test_runtime_check_parallel_digest () =
  let run jobs =
    Lemur_check.Runtime_check.run ~events:15 ~jobs ~seed:1 ~count:4 ()
  in
  let seq = run 1 and par = run 2 in
  Alcotest.(check string) "runtime digest invariant under -j"
    seq.Lemur_check.Runtime_check.rs_digest
    par.Lemur_check.Runtime_check.rs_digest;
  Alcotest.(check int) "same run count" seq.Lemur_check.Runtime_check.rs_runs
    par.Lemur_check.Runtime_check.rs_runs

(* ------------------------------------------------------------------ *)
(* Engine-vs-sim convergence: the real check on real runs, then
   mutation tests that hand-corrupt an engine result one field at a
   time and assert the check reports exactly that corruption — same
   discipline as the oracle mutation tests above. *)

module Convergence = Lemur_check.Convergence
module Engine = Lemur_dataplane.Engine
module Sim = Lemur_dataplane.Sim

(* One placed testbed chain executed both ways — the fixture every
   mutation below corrupts. *)
let converged_pair () =
  let c = cfg () in
  let input = mk "c" "Encrypt -> IPv4Fwd" (slo 4e9 100e9) in
  let p = place_lemur c [ input ] in
  let er = Engine.run ~seed:9 ~overdrive:1.0 ~config:c ~placement:p () in
  let sr = Sim.run ~seed:9 ~overdrive:1.0 ~config:c ~placement:p () in
  (c, er, sr)

let divergence_kinds v =
  List.map
    (function
      | Convergence.Throughput_mismatch _ -> "throughput"
      | Convergence.Latency_blowup _ -> "latency"
      | Convergence.Conservation_violation _ -> "conservation")
    v.Convergence.divergences

let check_diverges c er sr kind =
  let v =
    Convergence.check ~pkt_bytes:c.Plan.pkt_bytes ~engine:er ~sim:sr ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "divergence %s reported (got: %s)" kind
       (String.concat "," (divergence_kinds v)))
    true
    (List.mem kind (divergence_kinds v))

let mutate_chain er f =
  { er with Engine.chains = List.map f er.Engine.chains }

let test_convergence_accepts_real_run () =
  let c, er, sr = converged_pair () in
  let v =
    Convergence.check ~pkt_bytes:c.Plan.pkt_bytes ~engine:er ~sim:sr ()
  in
  Alcotest.(check bool)
    (Format.asprintf "clean verdict:@ %a"
       (Fmt.list Convergence.pp_divergence)
       v.Convergence.divergences)
    true (Convergence.ok v);
  Alcotest.(check int) "the chain was actually compared" 1
    v.Convergence.compared

let test_convergence_detects_inflated_rate () =
  (* An engine that claims more than Sim plus everything Sim admits to
     having dropped is lying about its own deliveries. *)
  let c, er, sr = converged_pair () in
  let broken =
    mutate_chain er (fun cr ->
        { cr with Engine.delivered = cr.Engine.delivered *. 1.6 })
  in
  check_diverges c broken sr "throughput"

let test_convergence_detects_shortfall () =
  (* Below Sim the band is tight: a 20% shortfall is a capacity bug. *)
  let c, er, sr = converged_pair () in
  let broken =
    mutate_chain er (fun cr ->
        { cr with Engine.delivered = cr.Engine.delivered *. 0.8 })
  in
  check_diverges c broken sr "throughput"

let test_convergence_detects_corrupt_counter () =
  (* Losing one packet from a counter breaks the identity — the check
     must catch an off-by-one, not just gross corruption. *)
  let c, er, sr = converged_pair () in
  let broken =
    mutate_chain er (fun cr ->
        { cr with Engine.delivered_pkts = cr.Engine.delivered_pkts - 1 })
  in
  check_diverges c broken sr "conservation"

let test_convergence_detects_latency_blowup () =
  let c, er, sr = converged_pair () in
  let broken =
    mutate_chain er (fun cr ->
        {
          cr with
          Engine.p99_latency =
            cr.Engine.p99_latency +. Lemur_util.Units.ms 5.0;
        })
  in
  check_diverges c broken sr "latency"

let test_convergence_floor_exemption () =
  (* Below the measurability floor the rate comparison is off — but
     conservation still applies. *)
  let c, er, sr = converged_pair () in
  let faint =
    mutate_chain er (fun cr ->
        { cr with Engine.offered = 50e6; delivered = cr.Engine.delivered *. 3.0 })
  in
  let v =
    Convergence.check ~pkt_bytes:c.Plan.pkt_bytes ~engine:faint ~sim:sr ()
  in
  Alcotest.(check bool) "no throughput flag below the floor" false
    (List.mem "throughput" (divergence_kinds v));
  Alcotest.(check int) "chain counted exempt" 1 v.Convergence.exempt;
  let faint_broken =
    mutate_chain faint (fun cr ->
        { cr with Engine.injected_pkts = cr.Engine.injected_pkts + 7 })
  in
  check_diverges c faint_broken sr "conservation"

let test_engine_conservation_on_fuzzed_scenarios () =
  (* The conservation identity on generator output, not hand-picked
     chains: every feasible quick scenario in a seed range, per chain
     and in aggregate. *)
  let checked = ref 0 in
  for seed = 1 to 10 do
    let scenario = Scenario.generate ~quick:true ~seed () in
    let c = Scenario.config scenario in
    match Strategy.place Strategy.Lemur c (Scenario.inputs scenario) with
    | Strategy.Infeasible _ -> ()
    | Strategy.Placed p ->
        let r =
          Engine.run ~seed:(seed + 13) ~overdrive:1.0 ~config:c ~placement:p
            ()
        in
        incr checked;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: per-chain identity" seed)
          true (Engine.conserved r);
        let sum f = List.fold_left (fun a cr -> a + f cr) 0 r.Engine.chains in
        Alcotest.(check int)
          (Printf.sprintf "seed %d: aggregate identity" seed)
          (sum (fun cr -> cr.Engine.injected_pkts))
          (sum (fun cr -> cr.Engine.delivered_pkts)
          + sum (fun cr -> cr.Engine.dropped_pkts)
          + sum (fun cr -> cr.Engine.in_flight_pkts))
  done;
  Alcotest.(check bool) "scenarios were actually executed" true (!checked >= 5)

let suite =
  [
    Alcotest.test_case "oracle accepts valid placements" `Quick
      test_accepts_valid_placements;
    Alcotest.test_case "oracle accepts a real deployment" `Quick
      test_accepts_valid_deployment;
    Alcotest.test_case "rejects: stage overflow" `Quick test_rejects_stage_overflow;
    Alcotest.test_case "rejects: core over-allocation" `Quick
      test_rejects_core_overallocation;
    Alcotest.test_case "rejects: link over-subscription" `Quick
      test_rejects_link_oversubscription;
    Alcotest.test_case "rejects: t_min violation" `Quick test_rejects_tmin_violation;
    Alcotest.test_case "rejects: t_max violation" `Quick test_rejects_tmax_violation;
    Alcotest.test_case "rejects: routing mismatch" `Quick
      test_rejects_routing_mismatch;
    Alcotest.test_case "scenarios are deterministic" `Quick
      test_scenario_deterministic;
    Alcotest.test_case "scenario inputs are well-formed" `Quick
      test_scenario_inputs_well_formed;
    Alcotest.test_case "shrinking preserves the failure" `Quick
      test_shrink_preserves_failure;
    Alcotest.test_case "convergence accepts a real run" `Quick
      test_convergence_accepts_real_run;
    Alcotest.test_case "convergence rejects: inflated rate" `Quick
      test_convergence_detects_inflated_rate;
    Alcotest.test_case "convergence rejects: shortfall" `Quick
      test_convergence_detects_shortfall;
    Alcotest.test_case "convergence rejects: corrupt counter" `Quick
      test_convergence_detects_corrupt_counter;
    Alcotest.test_case "convergence rejects: latency blowup" `Quick
      test_convergence_detects_latency_blowup;
    Alcotest.test_case "convergence floor exemption" `Quick
      test_convergence_floor_exemption;
    Alcotest.test_case "engine conservation on fuzzed scenarios" `Slow
      test_engine_conservation_on_fuzzed_scenarios;
    Alcotest.test_case "quick fuzz run is clean" `Quick test_quick_fuzz_clean;
    Alcotest.test_case "fuzz digest invariant under -j" `Slow
      test_fuzz_parallel_digest;
    Alcotest.test_case "runtime digest invariant under -j" `Slow
      test_runtime_check_parallel_digest;
  ]
