(* Telemetry: histogram percentile math, counter monotonicity, span
   nesting, and the JSON dump's round-trip shape. *)

open Lemur_telemetry

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float what expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" what expected got)
    true (feq expected got)

(* ------------------------------------------------------------------ *)
(* Histogram percentiles                                                *)

(* Hand-computed nearest-rank percentiles over exact bucket bounds.
   Bounds [1;2;4;8]: a sample equal to a bound lands in that bound's
   bucket, and the reported percentile is the bucket bound clamped to
   the observed max. *)
let test_percentile_exact () =
  let h = Histogram.make ~bounds:[| 1.0; 2.0; 4.0; 8.0 |] "t" in
  (* 10 samples: 4 in bucket <=1, 3 in <=2, 2 in <=4, 1 in <=8 *)
  List.iter (Histogram.record h)
    [ 0.5; 0.6; 0.9; 1.0; 1.5; 1.5; 2.0; 3.0; 4.0; 7.0 ];
  Alcotest.(check int) "count" 10 (Histogram.count h);
  (* nearest rank: rank = ceil(p/100 * 10) *)
  check_float "p10 (rank 1, bucket <=1)" 1.0 (Histogram.percentile h 10.0);
  check_float "p40 (rank 4, bucket <=1)" 1.0 (Histogram.percentile h 40.0);
  check_float "p50 (rank 5, bucket <=2)" 2.0 (Histogram.percentile h 50.0);
  check_float "p70 (rank 7, bucket <=2)" 2.0 (Histogram.percentile h 70.0);
  check_float "p80 (rank 8, bucket <=4)" 4.0 (Histogram.percentile h 80.0);
  (* rank 10 falls in bucket <=8, clamped to the observed max 7.0 *)
  check_float "p99 (rank 10, clamped to max)" 7.0 (Histogram.percentile h 99.0);
  check_float "p100" 7.0 (Histogram.percentile h 100.0);
  check_float "sum" 22.0 (Histogram.sum h);
  check_float "mean" 2.2 (Histogram.mean h);
  check_float "min" 0.5 (Histogram.min_value h);
  check_float "max" 7.0 (Histogram.max_value h)

let test_percentile_overflow () =
  let h = Histogram.make ~bounds:[| 1.0; 2.0 |] "t" in
  (* samples beyond the last bound land in the overflow bucket, whose
     percentile degrades to the exact observed maximum *)
  List.iter (Histogram.record h) [ 0.5; 5.0; 9.0 ];
  check_float "p99 = overflow max" 9.0 (Histogram.percentile h 99.0);
  check_float "p33 (rank 1)" 1.0 (Histogram.percentile h 33.0);
  match Histogram.bucket_counts h with
  | [ (b1, 1); (binf, 2) ] ->
      check_float "first bound" 1.0 b1;
      Alcotest.(check bool) "overflow bound" true (binf = infinity)
  | other ->
      Alcotest.failf "unexpected buckets (%d entries)" (List.length other)

let test_percentile_empty () =
  let h = Histogram.make "empty" in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  check_float "p50 of empty" 0.0 (Histogram.percentile h 50.0);
  check_float "p99 of empty" 0.0 (Histogram.percentile h 99.0);
  check_float "mean of empty" 0.0 (Histogram.mean h)

let test_percentile_single () =
  let h = Histogram.make "single" in
  Histogram.record h 1234.5;
  (* one sample: every percentile is that exact sample, not a bucket
     bound *)
  List.iter
    (fun p -> check_float (Printf.sprintf "p%g" p) 1234.5 (Histogram.percentile h p))
    [ 0.0; 50.0; 90.0; 99.0; 99.9; 100.0 ]

let test_histogram_validation () =
  Alcotest.check_raises "empty bounds" (Invalid_argument "Histogram.make: empty bounds")
    (fun () -> ignore (Histogram.make ~bounds:[||] "bad"));
  match Histogram.make ~bounds:[| 2.0; 1.0 |] "bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing bounds accepted"

(* ------------------------------------------------------------------ *)
(* Counters                                                             *)

let test_counter_monotone () =
  let c = Counter.make "c" in
  Alcotest.(check int) "starts at zero" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c ~by:41;
  Alcotest.(check int) "accumulates" 42 (Counter.value c);
  Counter.incr c ~by:0;
  Alcotest.(check int) "zero increment ok" 42 (Counter.value c);
  (match Counter.incr c ~by:(-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment accepted");
  Alcotest.(check int) "unchanged after rejected incr" 42 (Counter.value c)

let test_counter_interning () =
  let t = Telemetry.create () in
  let a = Telemetry.counter t "x" in
  let b = Telemetry.counter t "x" in
  Counter.incr a;
  Counter.incr b;
  Alcotest.(check int) "same name, same counter" 2 (Counter.value a);
  Alcotest.(check int) "one registered" 1 (List.length (Telemetry.counters t))

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

(* A deterministic clock: each read advances by 1 second. *)
let ticking () =
  let now = ref 0.0 in
  fun () ->
    let t = !now in
    now := t +. 1.0;
    t

let test_span_nesting () =
  let t = Telemetry.create ~clock:(ticking ()) () in
  Telemetry.with_span t "outer" (fun () ->
      Telemetry.with_span t "inner1" (fun () -> ());
      Telemetry.with_span t "inner2" (fun () -> ()));
  Telemetry.with_span t "second" (fun () -> ());
  match Telemetry.spans t with
  | [ outer; second ] ->
      Alcotest.(check string) "outer name" "outer" outer.Telemetry.span_name;
      Alcotest.(check string) "second root" "second" second.Telemetry.span_name;
      Alcotest.(check (list string))
        "children in order" [ "inner1"; "inner2" ]
        (List.map (fun s -> s.Telemetry.span_name) outer.Telemetry.span_children);
      (* clock reads: epoch(0) outer-open(1) inner1-open(2)
         inner1-close(3) inner2-open(4) inner2-close(5) outer-close(6);
         span starts are relative to the epoch *)
      check_float "outer duration" 5.0 outer.Telemetry.span_duration;
      (match outer.Telemetry.span_children with
      | [ i1; i2 ] ->
          check_float "inner1 start" 2.0 i1.Telemetry.span_start;
          check_float "inner1 duration" 1.0 i1.Telemetry.span_duration;
          check_float "inner2 start" 4.0 i2.Telemetry.span_start
      | _ -> Alcotest.fail "expected two children")
  | other -> Alcotest.failf "expected 2 root spans, got %d" (List.length other)

let test_span_exception () =
  let t = Telemetry.create ~clock:(ticking ()) () in
  (try
     Telemetry.with_span t "outer" (fun () ->
         Telemetry.with_span t "failing" (fun () -> failwith "boom"))
   with Failure _ -> ());
  match Telemetry.spans t with
  | [ outer ] ->
      Alcotest.(check string) "root survives" "outer" outer.Telemetry.span_name;
      Alcotest.(check (list string))
        "raising child recorded" [ "failing" ]
        (List.map (fun s -> s.Telemetry.span_name) outer.Telemetry.span_children)
  | other -> Alcotest.failf "expected 1 root span, got %d" (List.length other)

let test_disabled_sink () =
  let t = Telemetry.disabled in
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  let c = Telemetry.counter t "c" in
  Counter.incr c;
  Alcotest.(check int) "counter still works" 1 (Counter.value c);
  let c' = Telemetry.counter t "c" in
  Alcotest.(check int) "but is not interned" 0 (Counter.value c');
  Alcotest.(check int) "nothing registered" 0 (List.length (Telemetry.counters t));
  let r = Telemetry.with_span t "s" (fun () -> 42) in
  Alcotest.(check int) "span passes value through" 42 r;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Telemetry.spans t))

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                      *)

let get what = function Some v -> v | None -> Alcotest.failf "missing %s" what

let test_json_roundtrip () =
  let t = Telemetry.create ~clock:(ticking ()) () in
  Telemetry.with_span t "root" (fun () ->
      Counter.incr ~by:7 (Telemetry.counter t "events");
      let h = Telemetry.histogram t ~bounds:[| 1.0; 10.0; 100.0 |] "lat" in
      List.iter (Histogram.record h) [ 0.5; 5.0; 50.0; 500.0 ]);
  let text = Json.to_string (Telemetry.to_json t) in
  let doc =
    match Json.of_string text with
    | Ok d -> d
    | Error e -> Alcotest.failf "reparse failed: %s" e
  in
  (match Json.member "schema" doc with
  | Some (Json.String s) -> Alcotest.(check string) "schema" "lemur.telemetry/1" s
  | _ -> Alcotest.fail "schema missing");
  (match get "spans" (Json.member "spans" doc) with
  | Json.List [ span ] -> (
      match Json.member "name" span with
      | Some (Json.String n) -> Alcotest.(check string) "span name" "root" n
      | _ -> Alcotest.fail "span name missing")
  | _ -> Alcotest.fail "expected one span");
  (match get "counters" (Json.member "counters" doc) with
  | Json.List [ c ] ->
      Alcotest.(check (option string))
        "counter name" (Some "events")
        (match Json.member "name" c with Some (Json.String s) -> Some s | _ -> None);
      check_float "counter value" 7.0
        (get "value" (Option.bind (Json.member "value" c) Json.to_float))
  | _ -> Alcotest.fail "expected one counter");
  match get "histograms" (Json.member "histograms" doc) with
  | Json.List [ h ] ->
      let num k = get k (Option.bind (Json.member k h) Json.to_float) in
      check_float "count" 4.0 (num "count");
      (* rank ceil(0.5*4)=2 -> bucket <=10; rank ceil(.99*4)=4 ->
         overflow, clamped to max 500 *)
      check_float "p50" 10.0 (num "p50");
      check_float "p99" 500.0 (num "p99");
      check_float "max" 500.0 (num "max")
  | _ -> Alcotest.fail "expected one histogram"

let test_json_parser () =
  (match Json.of_string "{\"a\": [1, 2.5, null, true, \"x\\n\"]}" with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float f; Json.Null; Json.Bool true; Json.String "x\n" ]) ])
    when feq f 2.5 ->
      ()
  | Ok other -> Alcotest.failf "misparsed: %s" (Json.to_string ~pretty:false other)
  | Error e -> Alcotest.failf "parse error: %s" e);
  match Json.of_string "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed document"

let test_json_unicode_escapes () =
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (* the happy path: exactly four hex digits *)
  (match Json.of_string "\"\\u0041\"" with
  | Ok (Json.String "A") -> ()
  | Ok other -> Alcotest.failf "misparsed: %s" (Json.to_string ~pretty:false other)
  | Error e -> Alcotest.failf "rejected valid escape: %s" e);
  (* a valid surrogate pair parses (rendered as '?', outside ASCII) *)
  (match Json.of_string "\"\\uD83D\\uDE00\"" with
  | Ok (Json.String "?") -> ()
  | Ok other -> Alcotest.failf "misparsed pair: %s" (Json.to_string ~pretty:false other)
  | Error e -> Alcotest.failf "rejected valid pair: %s" e);
  let must_reject ~why ~needle doc =
    match Json.of_string doc with
    | Ok _ -> Alcotest.failf "accepted %s" why
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s names the problem (%s)" why e)
          true (contains ~needle e)
  in
  (* too few digits: the terminating quote is not hex *)
  must_reject ~why:"a 3-digit escape" ~needle:"non-hex" "\"\\u012\"";
  must_reject ~why:"a non-hex digit" ~needle:"non-hex" "\"\\u01g2\"";
  must_reject ~why:"a truncated escape" ~needle:"truncated" "\"\\u01";
  (* surrogate halves are only valid as a high+low pair *)
  must_reject ~why:"an unpaired high surrogate" ~needle:"unpaired high"
    "\"\\uD800x\"";
  must_reject ~why:"a lone low surrogate" ~needle:"unpaired low"
    "\"\\uDC00\"";
  must_reject ~why:"a high surrogate followed by a non-surrogate"
    ~needle:"expected low surrogate" "\"\\uD800\\u0041\""

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "percentiles: exact buckets" `Quick test_percentile_exact;
    Alcotest.test_case "percentiles: overflow bucket" `Quick test_percentile_overflow;
    Alcotest.test_case "percentiles: empty histogram" `Quick test_percentile_empty;
    Alcotest.test_case "percentiles: single sample" `Quick test_percentile_single;
    Alcotest.test_case "histogram bound validation" `Quick test_histogram_validation;
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotone;
    Alcotest.test_case "counter interning" `Quick test_counter_interning;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
    Alcotest.test_case "disabled sink is inert" `Quick test_disabled_sink;
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escapes;
  ]
