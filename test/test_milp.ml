(* Tests for the MILP placement formulation (§3.2), cross-checked
   against the search-based Optimal strategy. *)
open Lemur_placer

let config () = Plan.default_config (Lemur_topology.Topology.testbed ())

let mk id text tmin =
  {
    Plan.id;
    graph = Lemur_spec.Loader.chain_of_string ~name:id text;
    slo = Lemur_slo.Slo.make ~t_min:tmin ~t_max:(Lemur_util.Units.gbps 100.0) ();
  }

let test_single_chain () =
  let c = config () in
  match Milp.solve c [ mk "a" "ACL -> Encrypt -> IPv4Fwd" 2e9 ] with
  | None -> Alcotest.fail "expected feasible"
  | Some r ->
      let rate = List.assoc "a" r.Milp.rates in
      Alcotest.(check bool) "meets tmin" true (rate >= 2e9 -. 1e3);
      (* Encrypt has no switch implementation *)
      Alcotest.(check bool) "encrypt on server" true
        (List.mem "Encrypt" (List.assoc "a" r.Milp.server_nfs));
      (* the MILP should keep the cheap ACL on the switch: moving it to
         the server only adds work *)
      Alcotest.(check bool) "ACL stays on the switch" false
        (List.mem "ACL" (List.assoc "a" r.Milp.server_nfs));
      Alcotest.(check bool) "cores allocated" true (List.assoc "a" r.Milp.cores >= 1)

let test_infeasible_tmin () =
  let c = config () in
  (* three Dedups at 50 Gbps minimum cannot fit 15 cores *)
  match Milp.solve c [ mk "a" "Dedup -> Encrypt" 50e9 ] with
  | None -> ()
  | Some _ -> Alcotest.fail "expected infeasible"

let test_matches_optimal_shape () =
  let c = config () in
  let inputs =
    [ mk "a" "ACL -> Encrypt -> IPv4Fwd" 2e9; mk "b" "BPF -> NAT -> Dedup -> IPv4Fwd" 1e9 ]
  in
  match (Milp.solve c inputs, Strategy.place Strategy.Optimal c inputs) with
  | Some m, Strategy.Placed p ->
      (* The MILP omits the multi-core LB penalty (180 cycles), so it may
         sit slightly above the search optimum; both must agree within a
         few percent and rank the same chains as bottlenecked. *)
      let ratio = m.Milp.objective /. p.Strategy.total_marginal in
      Alcotest.(check bool)
        (Printf.sprintf "objectives within 10%% (milp %.2fG vs search %.2fG)"
           (m.Milp.objective /. 1e9)
           (p.Strategy.total_marginal /. 1e9))
        true
        (ratio > 0.9 && ratio < 1.1)
  | None, _ -> Alcotest.fail "milp infeasible"
  | _, Strategy.Infeasible { reason } -> Alcotest.failf "optimal infeasible: %s" reason

let test_bounce_accounting () =
  let c = config () in
  (* Encrypt and Decrypt around a switch-capable NAT: the MILP should
     either bounce through the switch (2 segments) or pull NAT to the
     server (1 segment); either way the link constraint must hold and
     the reported placement must be consistent. *)
  match Milp.solve c [ mk "a" "Encrypt -> NAT -> Decrypt" 1e9 ] with
  | None -> Alcotest.fail "expected feasible"
  | Some r ->
      let server = List.assoc "a" r.Milp.server_nfs in
      Alcotest.(check bool) "Encrypt on server" true (List.mem "Encrypt" server);
      Alcotest.(check bool) "Decrypt on server" true (List.mem "Decrypt" server);
      let rate = List.assoc "a" r.Milp.rates in
      Alcotest.(check bool) "positive rate" true (rate >= 1e9 -. 1e3)

let test_rejects_unsupported () =
  let c = config () in
  (match Milp.solve c [ mk "a" "LB -> [{'x': 1, NAT}, {'x': 2, NAT}] -> Dedup" 1e9 ] with
  | _ -> Alcotest.fail "expected Unsupported (branch)"
  | exception Milp.Unsupported _ -> ());
  match Milp.solve c [ mk "a" "Limiter -> Encrypt" 1e9 ] with
  | _ -> Alcotest.fail "expected Unsupported (non-replicable)"
  | exception Milp.Unsupported _ -> ()

let test_stage_budget_forces_eviction () =
  let c = config () in
  (* A long all-switch-capable chain exceeding the conservative table
     budget must put some NFs on the server. Budget is 27 tables; 16
     NATs = 32 tables. *)
  let text = String.concat " -> " (List.init 16 (fun _ -> "NAT")) in
  match Milp.solve c [ mk "a" text 1e7 ] with
  | None -> Alcotest.fail "expected feasible"
  | Some r ->
      Alcotest.(check bool) "some NATs evicted to the server" true
        (List.length (List.assoc "a" r.Milp.server_nfs) >= 3)

let test_generated_instances () =
  (* 50 generated instances inside the formulation's scope, mirroring
     the fuzzer's differential: whenever both the MILP and the search
     find a placement, the MILP objective may sit above the search (it
     omits the LB penalty and uses a conservative table budget) but
     never soar past it, and it must never collapse below the search
     optimum's tolerance band. *)
  let compared = ref 0 in
  for seed = 1 to 50 do
    let c, inputs = Lemur_check.Scenario.milp_instance ~seed in
    match (Milp.solve c inputs, Strategy.place Strategy.Optimal c inputs) with
    | Some m, Strategy.Placed p ->
        incr compared;
        let search = p.Strategy.total_marginal in
        let milp = m.Milp.objective in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: milp below search (%.2fG vs %.2fG)" seed
             (milp /. 1e9) (search /. 1e9))
          true
          (milp >= (0.9 *. search) -. 1e8);
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: milp soars above search (%.2fG vs %.2fG)"
             seed (milp /. 1e9) (search /. 1e9))
          true
          (milp <= (1.25 *. search) +. 1e8)
    | (None | Some _), _ -> ()
    | exception Milp.Unsupported _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough instances compared (%d)" !compared)
    true (!compared >= 20)

let test_node_limit_degrades () =
  (* A starved branch-and-bound must be a typed give-up, not a crash:
     [solve_checked] reports it, [solve] degrades to None (the caller
     falls back to the heuristic placement and the run continues). *)
  let c = config () in
  let inputs =
    [
      mk "a" "ACL -> Encrypt -> IPv4Fwd" 2e9;
      mk "b" "BPF -> NAT -> Dedup -> IPv4Fwd" 1e9;
    ]
  in
  (match Milp.solve_checked ~max_nodes:1 c inputs with
  | Error (Lemur_lp.Lp.Node_limit { explored; max_nodes }) ->
      Alcotest.(check int) "limit echoed" 1 max_nodes;
      Alcotest.(check bool) "explored counted" true (explored >= 1)
  | Error Lemur_lp.Lp.Unbounded_relaxation ->
      Alcotest.fail "wrong give-up variant"
  | Ok (Some _) -> Alcotest.fail "one node cannot close this instance"
  | Ok None -> Alcotest.fail "starved solve must not claim infeasibility");
  match Milp.solve ~max_nodes:1 c inputs with
  | None -> ()
  | Some _ -> Alcotest.fail "degrading wrapper must return None on give-up"

let test_warm_matches_cold_instances () =
  (* Warm-started branch and bound must agree with the cold solver on
     feasibility and objective for every generated instance; the trees
     explored may differ (equal-objective vertices steer most-fractional
     branching differently), so only the verdicts are compared. *)
  let compared = ref 0 in
  for seed = 1 to 30 do
    let c, inputs = Lemur_check.Scenario.milp_instance ~seed in
    match
      (Milp.solve ~warm:false c inputs, Milp.solve ~warm:true c inputs)
    with
    | Some cold, Some warm ->
        incr compared;
        let scale = Float.max 1.0 (Float.abs cold.Milp.objective) in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: warm objective matches cold (%.4fG vs %.4fG)"
             seed
             (cold.Milp.objective /. 1e9)
             (warm.Milp.objective /. 1e9))
          true
          (Float.abs (cold.Milp.objective -. warm.Milp.objective)
          <= 1e-6 *. scale)
    | None, None -> ()
    | Some _, None | None, Some _ ->
        Alcotest.failf "seed %d: warm and cold disagree on feasibility" seed
    | exception Milp.Unsupported _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough instances compared (%d)" !compared)
    true (!compared >= 15)

let suite =
  [
    Alcotest.test_case "single chain" `Quick test_single_chain;
    Alcotest.test_case "infeasible tmin" `Quick test_infeasible_tmin;
    Alcotest.test_case "matches search optimal" `Slow test_matches_optimal_shape;
    Alcotest.test_case "bounce accounting" `Quick test_bounce_accounting;
    Alcotest.test_case "rejects unsupported chains" `Quick test_rejects_unsupported;
    Alcotest.test_case "stage budget forces eviction" `Quick test_stage_budget_forces_eviction;
    Alcotest.test_case "node limit degrades, not crashes" `Quick
      test_node_limit_degrades;
    Alcotest.test_case "50 generated instances vs search" `Slow test_generated_instances;
    Alcotest.test_case "warm matches cold on generated instances" `Slow
      test_warm_matches_cold_instances;
  ]
