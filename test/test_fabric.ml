(* Tests for the spine/leaf fabric layer: tenant expansion, the sharded
   placer (determinism across job counts, the infeasible-shard repair
   pass) and the fabric-level oracle's ability to reject hand-broken
   placements, mirroring the single-rack oracle mutation tests. *)
open Lemur_topology
module Shard = Lemur_placer.Shard
module Fabric_check = Lemur_check.Fabric_check

let demand ?(pinned = false) ~home ~tmin id text =
  {
    Fabric.d_id = id;
    d_tenant = id;
    d_graph = Lemur_spec.Loader.chain_of_string ~name:id text;
    d_slo = Lemur_slo.Slo.make ~t_min:tmin ~t_max:100e9 ();
    d_home = Some home;
    d_pinned = pinned;
  }

let rack ?(servers = 2) ?(uplink = 200e9) name =
  {
    Fabric.rack_name = name;
    rack = Topology.testbed ~num_servers:servers ();
    uplink_up = uplink;
    uplink_down = uplink;
  }

let placed = function
  | Shard.Placed fp -> fp
  | Shard.Infeasible { errors; _ } ->
      Alcotest.failf "fabric placement unexpectedly infeasible: %s"
        (String.concat "; " (List.map Shard.error_to_string errors))

let check_kinds fp =
  match Fabric_check.check fp with
  | Ok () -> []
  | Error vs -> List.map Fabric_check.kind_name vs

let check_has fp kind =
  let ks = check_kinds fp in
  Alcotest.(check bool)
    (Printf.sprintf "fabric oracle rejects with %s (got: %s)" kind
       (String.concat "," ks))
    true (List.mem kind ks)

let check_clean fp =
  match Fabric_check.check fp with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "fabric oracle rejected a valid placement: %a"
        (Fmt.list ~sep:Fmt.comma Fabric_check.pp_violation)
        vs

(* ------------------------------------------------------------------ *)
(* Fabric construction and tenant expansion                            *)

let test_make_validates () =
  Alcotest.check_raises "duplicate rack names" (Fabric.Invalid
    "fabric: duplicate rack name ra") (fun () ->
      ignore (Fabric.make [ rack "ra"; rack "ra" ]));
  (match Fabric.make [] with
  | exception Fabric.Invalid _ -> ()
  | _ -> Alcotest.fail "empty fabric accepted");
  let f = Fabric.make [ rack "rb"; rack "ra" ] in
  Alcotest.(check (list string))
    "racks sorted by name" [ "ra"; "rb" ] (Fabric.rack_names f);
  Alcotest.(check (float 0.0))
    "uplink lookup" 200e9
    (Fabric.uplink_capacity f "ra" `Up)

let test_expand_shares () =
  let tn =
    Fabric.tenant ~home:"ra" ~chains:7 ~name:"t" ~subscribers:1_000_000
      ~rate_per_sub:1357.0 "ACL -> NAT"
  in
  let ds = Fabric.expand [ tn ] in
  Alcotest.(check int) "7 instances" 7 (List.length ds);
  Alcotest.(check (list string))
    "instance ids"
    (List.init 7 (Printf.sprintf "t/%d"))
    (List.map (fun d -> d.Fabric.d_id) ds);
  let aggregate = 1_000_000.0 *. 1357.0 in
  Alcotest.(check bool)
    "shares sum back to the aggregate" true
    (Float.abs (Fabric.total_demand ds -. aggregate) <= 1.0);
  (* One elaboration per tenant: instances share the graph value. *)
  (match ds with
  | a :: b :: _ ->
      Alcotest.(check bool) "shared graph" true (a.Fabric.d_graph == b.Fabric.d_graph)
  | _ -> assert false);
  match Fabric.expand [ tn; tn ] with
  | exception Fabric.Invalid _ -> ()
  | _ -> Alcotest.fail "duplicate tenant names accepted"

let test_synthetic_deterministic () =
  let f = Fabric.synthetic ~racks:3 ~servers_per_rack:2 () in
  let d1 = Fabric.expand (Fabric.synthetic_tenants ~seed:7 ~tenants:5 ~chains:20 f)
  and d2 = Fabric.expand (Fabric.synthetic_tenants ~seed:7 ~tenants:5 ~chains:20 f) in
  Alcotest.(check int) "20 demands" 20 (List.length d1);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same id" a.Fabric.d_id b.Fabric.d_id;
      Alcotest.(check (float 0.0))
        "same floor" a.Fabric.d_slo.Lemur_slo.Slo.t_min
        b.Fabric.d_slo.Lemur_slo.Slo.t_min;
      Alcotest.(check (option string)) "same home" a.Fabric.d_home b.Fabric.d_home)
    d1 d2

(* ------------------------------------------------------------------ *)
(* Sharded placement                                                   *)

(* Eight 2 Gbps chains all homed on [ra] of a two-rack fabric: the
   fair-share headroom rule must spill some to [rb] as budgeted
   cross-rack chains, and the result must satisfy the fabric oracle. *)
let spill_fabric () = Fabric.make [ rack "ra"; rack "rb" ]

let spill_demands () =
  List.init 8 (fun i ->
      demand ~home:"ra" ~tmin:2e9 (Printf.sprintf "c%d" i) "ACL -> NAT")

let test_spill_cross_rack () =
  let cfg = Shard.default_config (spill_fabric ()) in
  let fp = placed (Shard.place ~jobs:1 cfg (spill_demands ())) in
  let cross =
    List.filter (fun (a : Shard.assignment) -> a.Shard.a_cross)
      fp.Shard.assignments
  in
  Alcotest.(check bool) "some chains spill cross-rack" true (cross <> []);
  List.iter
    (fun (a : Shard.assignment) ->
      Alcotest.(check string) "spilled chains serve on rb" "rb" a.Shard.a_rack)
    cross;
  check_clean fp

(* The partition proxy balances by rate per core, which is blind to how
   many cores a given rate actually costs: Encrypt runs server-only at
   roughly 2 Gbps/core, so four 8 Gbps Encrypt chains need ~16 cores —
   more than the one-server rack's 15 — while the high-rate [rb]
   fillers offload to the ToR and cost none. The fillers inflate the
   fabric-wide fair share enough that the partition leaves all four
   Encrypt chains at home, the shard comes back infeasible, and the
   repair pass must re-home chains to the big rack. *)
let test_repair_rehomes () =
  let f = Fabric.make [ rack ~servers:1 "ra"; rack ~servers:4 "rb" ] in
  let fillers =
    List.init 8 (fun i ->
        demand ~home:"rb" ~tmin:14e9 (Printf.sprintf "f%d" i) "ACL -> NAT")
  in
  let heavies =
    List.init 4 (fun i ->
        demand ~home:"ra" ~tmin:8e9 (Printf.sprintf "s%d" i) "Encrypt")
  in
  let cfg = Shard.default_config f in
  let fp = placed (Shard.place ~jobs:1 cfg (fillers @ heavies)) in
  Alcotest.(check bool) "repair pass ran" true (fp.Shard.repairs <> []);
  List.iter
    (fun (r : Shard.repair) ->
      Alcotest.(check string) "moves shed the small rack" "ra" r.Shard.rp_from;
      Alcotest.(check string) "moves land on the big rack" "rb" r.Shard.rp_to)
    fp.Shard.repairs;
  (* Re-homed chains are ordinary budgeted cross-rack chains now. *)
  List.iter
    (fun (r : Shard.repair) ->
      let a =
        List.find
          (fun (a : Shard.assignment) ->
            String.equal a.Shard.a_demand.Fabric.d_id r.Shard.rp_chain)
          fp.Shard.assignments
      in
      Alcotest.(check bool) "moved chain flagged cross-rack" true
        a.Shard.a_cross)
    fp.Shard.repairs;
  check_clean fp

(* A rack of pinned chains that cannot fit and cannot move: the planner
   must give up with a typed per-shard error, not loop or lie. *)
let test_repair_stuck_when_pinned () =
  let f = Fabric.make [ rack ~servers:1 "ra"; rack ~servers:4 "rb" ] in
  let stuck =
    List.init 4 (fun i ->
        demand ~pinned:true ~home:"ra" ~tmin:8e9
          (Printf.sprintf "s%d" i)
          "Encrypt")
  in
  match Shard.place ~jobs:1 (Shard.default_config f) stuck with
  | Shard.Placed _ -> Alcotest.fail "overcommitted pinned shard placed"
  | Shard.Infeasible { errors; _ } ->
      Alcotest.(check bool) "reports the stuck shard" true
        (List.exists
           (function
             | Shard.Shard_infeasible { rack = "ra"; _ } -> true | _ -> false)
           errors)

let test_place_validates_inputs () =
  let cfg = Shard.default_config (spill_fabric ()) in
  let d = demand ~home:"ra" ~tmin:1e9 "c0" "ACL -> NAT" in
  (match Shard.place ~jobs:1 cfg [ d; d ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate demand ids accepted");
  match Shard.place ~jobs:1 cfg [ demand ~home:"nowhere" ~tmin:1e9 "c1" "NAT" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown home rack accepted"

(* ------------------------------------------------------------------ *)
(* Fabric oracle mutation tests                                        *)

let test_oracle_unbudgeted_cross () =
  let cfg = Shard.default_config (spill_fabric ()) in
  let fp = placed (Shard.place ~jobs:1 cfg (spill_demands ())) in
  let broken =
    {
      fp with
      Shard.assignments =
        List.map
          (fun (a : Shard.assignment) ->
            if a.Shard.a_cross then { a with Shard.a_cross = false } else a)
          fp.Shard.assignments;
    }
  in
  check_has broken "unbudgeted_cross_rack"

let test_oracle_uplink_overcommit () =
  let cfg = Shard.default_config (spill_fabric ()) in
  let fp = placed (Shard.place ~jobs:1 cfg (spill_demands ())) in
  (* Same racks, starved uplinks: the reserved floors now exceed what
     the fabric can carry, and the oracle must notice. *)
  let starved =
    Fabric.make [ rack ~uplink:0.1e9 "ra"; rack ~uplink:0.1e9 "rb" ]
  in
  let broken =
    { fp with Shard.config = { cfg with Shard.fabric = starved } }
  in
  check_has broken "uplink_overcommit"

let test_oracle_pinned_moved () =
  let cfg = Shard.default_config (spill_fabric ()) in
  let d = demand ~pinned:true ~home:"ra" ~tmin:1e9 "p0" "ACL -> NAT" in
  let fp = placed (Shard.place ~jobs:1 cfg [ d ]) in
  let broken =
    {
      fp with
      Shard.assignments =
        List.map
          (fun (a : Shard.assignment) ->
            { a with Shard.a_rack = "rb"; a_cross = true })
          fp.Shard.assignments;
    }
  in
  check_has broken "pinned_moved"

let test_oracle_multihomed () =
  let cfg = Shard.default_config (spill_fabric ()) in
  let fp = placed (Shard.place ~jobs:1 cfg (spill_demands ())) in
  let broken =
    {
      fp with
      Shard.rack_reports =
        List.map
          (fun (rk : Shard.rack_report) ->
            { rk with Shard.rk_chain_ids = "c0" :: rk.Shard.rk_chain_ids })
          fp.Shard.rack_reports;
    }
  in
  check_has broken "chain_multihomed"

let test_oracle_books_inconsistent () =
  let cfg = Shard.default_config (spill_fabric ()) in
  let fp = placed (Shard.place ~jobs:1 cfg (spill_demands ())) in
  let broken =
    {
      fp with
      Shard.uplink_loads =
        List.map (fun (r, up, down) -> (r, up +. 3e9, down)) fp.Shard.uplink_loads;
    }
  in
  check_has broken "uplink_loads_inconsistent"

(* ------------------------------------------------------------------ *)
(* Determinism across job counts                                       *)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:6
      ~name:"sharded placement digest is byte-identical at -j 1 and -j 4"
      (make
         Gen.(
           triple (int_range 0 1000) (int_range 2 3) (int_range 12 24)))
      (fun (seed, racks, chains) ->
        let f = Fabric.synthetic ~racks ~servers_per_rack:2 () in
        let demands =
          Fabric.expand (Fabric.synthetic_tenants ~seed ~tenants:4 ~chains f)
        in
        let cfg = Shard.default_config f in
        match
          (Shard.place ~jobs:1 cfg demands, Shard.place ~jobs:4 cfg demands)
        with
        | Shard.Placed a, Shard.Placed b ->
            String.equal (Shard.digest a) (Shard.digest b)
        | Shard.Infeasible a, Shard.Infeasible b ->
            (* Same verdict, same typed errors, same repair history. *)
            List.map Shard.error_to_string a.errors
            = List.map Shard.error_to_string b.errors
            && a.repairs = b.repairs
        | _ -> false);
  ]

let suite =
  [
    Alcotest.test_case "make validates racks" `Quick test_make_validates;
    Alcotest.test_case "expand splits aggregates" `Quick test_expand_shares;
    Alcotest.test_case "synthetic tenants deterministic" `Quick
      test_synthetic_deterministic;
    Alcotest.test_case "headroom spills cross-rack" `Quick
      test_spill_cross_rack;
    Alcotest.test_case "repair re-homes infeasible shards" `Quick
      test_repair_rehomes;
    Alcotest.test_case "repair reports stuck pinned shards" `Quick
      test_repair_stuck_when_pinned;
    Alcotest.test_case "place validates inputs" `Quick
      test_place_validates_inputs;
    Alcotest.test_case "oracle: unbudgeted cross-rack" `Quick
      test_oracle_unbudgeted_cross;
    Alcotest.test_case "oracle: uplink overcommit" `Quick
      test_oracle_uplink_overcommit;
    Alcotest.test_case "oracle: pinned moved" `Quick test_oracle_pinned_moved;
    Alcotest.test_case "oracle: multihomed chain" `Quick
      test_oracle_multihomed;
    Alcotest.test_case "oracle: inconsistent books" `Quick
      test_oracle_books_inconsistent;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases
