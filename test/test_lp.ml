(* Tests for the simplex LP solver and the branch-and-bound MILP. *)
open Lemur_lp

let check_optimal ?(tol = 1e-6) name expected outcome =
  match outcome with
  | Lp.Optimal { objective; _ } ->
      Alcotest.(check (float tol)) name expected objective
  | Lp.Infeasible -> Alcotest.failf "%s: unexpectedly infeasible" name
  | Lp.Unbounded -> Alcotest.failf "%s: unexpectedly unbounded" name

let milp_ok = function
  | Ok outcome -> outcome
  | Error e -> Alcotest.failf "milp gave up: %s" (Lp.milp_error_to_string e)

let test_basic_max () =
  (* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12 *)
  let p = Lp.create () in
  let x = Lp.add_var p ~name:"x" () in
  let y = Lp.add_var p ~name:"y" () in
  Lp.add_constraint p [ (1.0, x); (1.0, y) ] `Le 4.0;
  Lp.add_constraint p [ (1.0, x); (3.0, y) ] `Le 6.0;
  Lp.set_objective p ~maximize:true [ (3.0, x); (2.0, y) ];
  check_optimal "basic max" 12.0 (Lp.solve p)

let test_classic () =
  (* max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> obj = 21 (x=3, y=1.5) *)
  let p = Lp.create () in
  let x = Lp.add_var p ~name:"x" () in
  let y = Lp.add_var p ~name:"y" () in
  Lp.add_constraint p [ (6.0, x); (4.0, y) ] `Le 24.0;
  Lp.add_constraint p [ (1.0, x); (2.0, y) ] `Le 6.0;
  Lp.set_objective p ~maximize:true [ (5.0, x); (4.0, y) ];
  match Lp.solve p with
  | Lp.Optimal { objective; values } ->
      Alcotest.(check (float 1e-6)) "objective" 21.0 objective;
      Alcotest.(check (float 1e-6)) "x" 3.0 values.(0);
      Alcotest.(check (float 1e-6)) "y" 1.5 values.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_ge_and_eq () =
  (* min x + y s.t. x + y >= 3, x = 1 -> obj = 3 (x=1, y=2) *)
  let p = Lp.create () in
  let x = Lp.add_var p ~name:"x" () in
  let y = Lp.add_var p ~name:"y" () in
  Lp.add_constraint p [ (1.0, x); (1.0, y) ] `Ge 3.0;
  Lp.add_constraint p [ (1.0, x) ] `Eq 1.0;
  Lp.set_objective p ~maximize:false [ (1.0, x); (1.0, y) ];
  match Lp.solve p with
  | Lp.Optimal { objective; values } ->
      Alcotest.(check (float 1e-6)) "objective" 3.0 objective;
      Alcotest.(check (float 1e-6)) "x" 1.0 values.(0);
      Alcotest.(check (float 1e-6)) "y" 2.0 values.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible () =
  let p = Lp.create () in
  let x = Lp.add_var p ~name:"x" () in
  Lp.add_constraint p [ (1.0, x) ] `Ge 5.0;
  Lp.add_constraint p [ (1.0, x) ] `Le 2.0;
  Lp.set_objective p ~maximize:true [ (1.0, x) ];
  match Lp.solve p with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = Lp.create () in
  let x = Lp.add_var p ~name:"x" () in
  let y = Lp.add_var p ~name:"y" () in
  Lp.add_constraint p [ (1.0, x); (-1.0, y) ] `Le 1.0;
  Lp.set_objective p ~maximize:true [ (1.0, x) ];
  match Lp.solve p with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_var_bounds () =
  (* max x + y with x in [0,2], y in [1,3], x + y <= 4 -> obj = 4 *)
  let p = Lp.create () in
  let x = Lp.add_var p ~ub:2.0 ~name:"x" () in
  let y = Lp.add_var p ~lb:1.0 ~ub:3.0 ~name:"y" () in
  Lp.add_constraint p [ (1.0, x); (1.0, y) ] `Le 4.0;
  Lp.set_objective p ~maximize:true [ (1.0, x); (1.0, y) ];
  check_optimal "bounded" 4.0 (Lp.solve p)

let test_lb_infeasible () =
  (* lower bound conflicts with a row *)
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:5.0 ~name:"x" () in
  Lp.add_constraint p [ (1.0, x) ] `Le 2.0;
  Lp.set_objective p ~maximize:true [ (1.0, x) ];
  match Lp.solve p with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible from lb"

let test_rate_lp_shape () =
  (* The shape used by the Placer: maximize sum of marginals subject to
     per-chain caps and a shared NIC capacity. Chains A, B: est 10, 20;
     t_min 4, 6; NIC: rA*2 + rB <= 20 (A bounces twice).
     Optimal: rB = 20 - 2*rA; maximize rA + rB - 10 => maximize -rA => rA=4,
     rB = 12. Objective = (4-4) + (12-6) = 6. *)
  let p = Lp.create () in
  let ra = Lp.add_var p ~lb:4.0 ~ub:10.0 ~name:"rA" () in
  let rb = Lp.add_var p ~lb:6.0 ~ub:20.0 ~name:"rB" () in
  Lp.add_constraint p [ (2.0, ra); (1.0, rb) ] `Le 20.0;
  Lp.set_objective p ~maximize:true [ (1.0, ra); (1.0, rb) ];
  match Lp.solve p with
  | Lp.Optimal { values; _ } ->
      Alcotest.(check (float 1e-6)) "rA" 4.0 values.(0);
      Alcotest.(check (float 1e-6)) "rB" 12.0 values.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_degenerate_cycling () =
  (* A classic degenerate instance; Bland's rule must terminate. *)
  let p = Lp.create () in
  let x1 = Lp.add_var p ~name:"x1" () in
  let x2 = Lp.add_var p ~name:"x2" () in
  let x3 = Lp.add_var p ~name:"x3" () in
  let x4 = Lp.add_var p ~name:"x4" () in
  Lp.add_constraint p [ (0.5, x1); (-5.5, x2); (-2.5, x3); (9.0, x4) ] `Le 0.0;
  Lp.add_constraint p [ (0.5, x1); (-1.5, x2); (-0.5, x3); (1.0, x4) ] `Le 0.0;
  Lp.add_constraint p [ (1.0, x1) ] `Le 1.0;
  Lp.set_objective p ~maximize:true
    [ (10.0, x1); (-57.0, x2); (-9.0, x3); (-24.0, x4) ];
  check_optimal "degenerate (Beale)" 1.0 (Lp.solve p)

let test_mixed_scale_regression () =
  (* Regression: this exact instance (rates ~1e9 with unit loads) made
     phase 1 declare a feasible problem infeasible before tolerances
     were made scale-relative. *)
  let p = Lp.create () in
  let r1 = Lp.add_var p ~lb:1118238760.5614979 ~ub:4285045100.2140875 ~name:"r1" () in
  let r3 = Lp.add_var p ~lb:302116058.64852208 ~ub:1791471554.8196402 ~name:"r3" () in
  let r4 = Lp.add_var p ~lb:302116058.64852208 ~ub:1194314369.87976 ~name:"r4" () in
  Lp.add_constraint p
    [ (2.4400000000000004, r1); (2.0, r3); (3.0000000000000004, r4) ]
    `Le 40e9;
  Lp.set_objective p ~maximize:true [ (1.0, r1); (1.0, r3); (1.0, r4) ];
  match Lp.solve p with
  | Lp.Optimal { objective; _ } ->
      Alcotest.(check bool) "near 7.27G" true
        (objective > 7.2e9 && objective < 7.35e9)
  | Lp.Infeasible -> Alcotest.fail "scale-sensitive false infeasibility"
  | Lp.Unbounded -> Alcotest.fail "unbounded"

let test_milp_knapsack () =
  (* max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14, binary -> 21 (b,c,d) *)
  let p = Lp.create () in
  let mk name = Lp.add_var p ~ub:1.0 ~integer:true ~name () in
  let a = mk "a" and b = mk "b" and c = mk "c" and d = mk "d" in
  Lp.add_constraint p [ (5.0, a); (7.0, b); (4.0, c); (3.0, d) ] `Le 14.0;
  Lp.set_objective p ~maximize:true [ (8.0, a); (11.0, b); (6.0, c); (4.0, d) ];
  check_optimal "knapsack" 21.0 (milp_ok (Lp.solve_milp p))

let test_milp_integrality () =
  (* LP relaxation gives fractional optimum; MILP must round properly.
     max x + y s.t. 2x + 2y <= 5, integers -> 2 (e.g. x=2,y=0). *)
  let p = Lp.create () in
  let x = Lp.add_var p ~integer:true ~name:"x" () in
  let y = Lp.add_var p ~integer:true ~name:"y" () in
  Lp.add_constraint p [ (2.0, x); (2.0, y) ] `Le 5.0;
  Lp.set_objective p ~maximize:true [ (1.0, x); (1.0, y) ];
  match milp_ok (Lp.solve_milp p) with
  | Lp.Optimal { objective; values } ->
      Alcotest.(check (float 1e-6)) "objective" 2.0 objective;
      Alcotest.(check bool) "integral" true
        (Array.for_all (fun v -> Float.abs (v -. Float.round v) < 1e-6) values)
  | _ -> Alcotest.fail "expected optimal"

let test_milp_node_limit () =
  (* The branch-and-bound give-up path must be a typed [Error], not an
     exception: the caller (Milp.solve) degrades to the heuristic. *)
  let p = Lp.create () in
  let mk name = Lp.add_var p ~ub:1.0 ~integer:true ~name () in
  let a = mk "a" and b = mk "b" and c = mk "c" and d = mk "d" in
  Lp.add_constraint p [ (5.0, a); (7.0, b); (4.0, c); (3.0, d) ] `Le 14.0;
  Lp.set_objective p ~maximize:true [ (8.0, a); (11.0, b); (6.0, c); (4.0, d) ];
  match Lp.solve_milp ~max_nodes:1 p with
  | Error (Lp.Node_limit { explored; max_nodes }) ->
      Alcotest.(check int) "limit echoed" 1 max_nodes;
      Alcotest.(check bool) "explored counted" true (explored >= 1)
  | Error Lp.Unbounded_relaxation -> Alcotest.fail "wrong error variant"
  | Ok _ -> Alcotest.fail "expected a node-limit give-up"

let test_milp_unbounded_relaxation () =
  let p = Lp.create () in
  let x = Lp.add_var p ~integer:true ~name:"x" () in
  Lp.set_objective p ~maximize:true [ (1.0, x) ];
  match Lp.solve_milp p with
  | Error Lp.Unbounded_relaxation -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Lp.milp_error_to_string e)
  | Ok _ -> Alcotest.fail "expected an unbounded-relaxation error"

(* The standard-form corpus the pricing and warm-start tests sweep:
   every shape the Lp layer emits (Le/Ge/Eq rows, bounds-as-rows,
   negative rhs, degeneracy, mixed scales) in raw [Simplex] form. *)
let simplex_corpus =
  [
    ( "basic",
      [| 3.0; 2.0 |],
      [| [| 1.0; 1.0 |]; [| 1.0; 3.0 |] |],
      [| 4.0; 6.0 |] );
    ( "classic",
      [| 5.0; 4.0 |],
      [| [| 6.0; 4.0 |]; [| 1.0; 2.0 |] |],
      [| 24.0; 6.0 |] );
    ( "negative rhs",
      [| -1.0; -1.0 |],
      [| [| -1.0; -1.0 |]; [| 1.0; 0.0 |]; [| -1.0; 0.0 |] |],
      [| -3.0; 1.0; -1.0 |] );
    ( "beale degenerate",
      [| 10.0; -57.0; -9.0; -24.0 |],
      [|
        [| 0.5; -5.5; -2.5; 9.0 |];
        [| 0.5; -1.5; -0.5; 1.0 |];
        [| 1.0; 0.0; 0.0; 0.0 |];
      |],
      [| 0.0; 0.0; 1.0 |] );
    ( "mixed scale",
      [| 1.0; 1.0; 1.0 |],
      [|
        [| 2.44; 2.0; 3.0 |];
        [| -1.0; 0.0; 0.0 |];
        [| 0.0; -1.0; 0.0 |];
        [| 0.0; 0.0; -1.0 |];
      |],
      [| 40e9; -1.1e9; -3.0e8; -3.0e8 |] );
    ("infeasible", [| 1.0 |], [| [| -1.0 |]; [| 1.0 |] |], [| -5.0; 2.0 |]);
    ("unbounded", [| 1.0; 0.0 |], [| [| 1.0; -1.0 |] |], [| 1.0 |]);
  ]

let test_dantzig_matches_bland () =
  (* Dantzig pricing (with its Bland anti-cycling fallback) must land on
     the same optimum — or the same infeasible/unbounded verdict — as
     pure Bland on every corpus instance. *)
  List.iter
    (fun (name, c, a, b) ->
      let bland = fst (Simplex.solve_basis ~pricing:Simplex.Bland ~c ~a ~b ()) in
      let dantzig =
        fst (Simplex.solve_basis ~pricing:Simplex.Dantzig ~c ~a ~b ())
      in
      match (bland, dantzig) with
      | Simplex.Optimal { objective = ob; _ }, Simplex.Optimal { objective = od; _ }
        ->
          let scale = Float.max 1.0 (Float.abs ob) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: objectives agree (%g vs %g)" name ob od)
            true
            (Float.abs (ob -. od) <= 1e-6 *. scale)
      | Simplex.Infeasible, Simplex.Infeasible -> ()
      | Simplex.Unbounded, Simplex.Unbounded -> ()
      | _ -> Alcotest.failf "%s: pricing rules disagree on outcome class" name)
    simplex_corpus

let test_warm_basis_reuse () =
  (* Re-solving from the exported optimal basis must reproduce the cold
     optimum, both for the identical instance and after nudging the rhs
     (the branch-and-bound pattern: same rows, tightened bounds). *)
  List.iter
    (fun (name, c, a, b) ->
      match Simplex.solve_basis ~c ~a ~b () with
      | Simplex.Optimal { objective = cold; _ }, Some basis ->
          (match Simplex.solve_basis ~warm:basis ~c ~a ~b () with
          | Simplex.Optimal { objective = warm; _ }, _ ->
              let scale = Float.max 1.0 (Float.abs cold) in
              Alcotest.(check bool)
                (Printf.sprintf "%s: warm re-solve matches (%g vs %g)" name cold
                   warm)
                true
                (Float.abs (cold -. warm) <= 1e-6 *. scale)
          | _ -> Alcotest.failf "%s: warm re-solve lost optimality" name);
          (* Tighten every rhs slightly: the old basis is dual feasible,
             so the warm path should recover the new optimum too. *)
          let b' = Array.map (fun bi -> bi -. (0.05 *. Float.abs bi)) b in
          let cold' = fst (Simplex.solve_basis ~c ~a ~b:b' ()) in
          let warm' = fst (Simplex.solve_basis ~warm:basis ~c ~a ~b:b' ()) in
          (match (cold', warm') with
          | ( Simplex.Optimal { objective = oc; _ },
              Simplex.Optimal { objective = ow; _ } ) ->
              let scale = Float.max 1.0 (Float.abs oc) in
              Alcotest.(check bool)
                (Printf.sprintf "%s: warm tightened-rhs matches (%g vs %g)" name
                   oc ow)
                true
                (Float.abs (oc -. ow) <= 1e-6 *. scale)
          | Simplex.Infeasible, Simplex.Infeasible -> ()
          | Simplex.Unbounded, Simplex.Unbounded -> ()
          | _ ->
              Alcotest.failf "%s: warm and cold disagree after rhs tightening"
                name)
      | Simplex.Optimal _, None ->
          Alcotest.failf "%s: optimal solve exported no basis" name
      | (Simplex.Infeasible | Simplex.Unbounded), _ -> ())
    simplex_corpus

let test_milp_warm_matches_cold () =
  (* Warm-started branch and bound may explore a different tree (equal
     optima change the most-fractional branch) but must reach the same
     objective as the cold solver on every instance. *)
  let knapsack () =
    let p = Lp.create () in
    let mk name = Lp.add_var p ~ub:1.0 ~integer:true ~name () in
    let a = mk "a" and b = mk "b" and c = mk "c" and d = mk "d" in
    Lp.add_constraint p [ (5.0, a); (7.0, b); (4.0, c); (3.0, d) ] `Le 14.0;
    Lp.set_objective p ~maximize:true
      [ (8.0, a); (11.0, b); (6.0, c); (4.0, d) ];
    p
  in
  let integrality () =
    let p = Lp.create () in
    let x = Lp.add_var p ~integer:true ~name:"x" () in
    let y = Lp.add_var p ~integer:true ~name:"y" () in
    Lp.add_constraint p [ (2.0, x); (2.0, y) ] `Le 5.0;
    Lp.set_objective p ~maximize:true [ (1.0, x); (1.0, y) ];
    p
  in
  let mixed () =
    (* Integer cores alongside a continuous rate, the placer's shape. *)
    let p = Lp.create () in
    let k1 = Lp.add_var p ~lb:1.0 ~ub:8.0 ~integer:true ~name:"k1" () in
    let k2 = Lp.add_var p ~lb:1.0 ~ub:8.0 ~integer:true ~name:"k2" () in
    let r = Lp.add_var p ~ub:20.0 ~name:"r" () in
    Lp.add_constraint p [ (1.0, k1); (1.0, k2) ] `Le 10.0;
    Lp.add_constraint p [ (1.0, r); (-2.5, k1) ] `Le 0.0;
    Lp.add_constraint p [ (1.0, r); (-3.5, k2) ] `Le 0.0;
    Lp.set_objective p ~maximize:true
      [ (1.0, r); (-0.1, k1); (-0.1, k2) ];
    p
  in
  List.iter
    (fun (name, mk) ->
      let cold = milp_ok (Lp.solve_milp ~warm:false (mk ())) in
      let warm = milp_ok (Lp.solve_milp ~warm:true (mk ())) in
      match (cold, warm) with
      | Lp.Optimal { objective = oc; _ }, Lp.Optimal { objective = ow; _ } ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "%s: warm matches cold" name)
            oc ow
      | Lp.Infeasible, Lp.Infeasible -> ()
      | Lp.Unbounded, Lp.Unbounded -> ()
      | _ -> Alcotest.failf "%s: warm and cold disagree on outcome class" name)
    [ ("knapsack", knapsack); ("integrality", integrality); ("mixed", mixed) ]

(* Random-LP property: simplex objective matches a brute-force grid search
   within discretization error, and never reports a worse solution. *)
let qcheck_cases =
  let open QCheck in
  let gen_lp =
    Gen.(
      let* n = int_range 1 3 in
      let* m = int_range 1 4 in
      let* c = array_size (return n) (float_range 0.1 5.0) in
      let* a = array_size (return m) (array_size (return n) (float_range 0.0 3.0)) in
      let* b = array_size (return m) (float_range 1.0 10.0) in
      return (c, a, b))
  in
  let arb = make ~print:(fun _ -> "<lp>") gen_lp in
  [
    Test.make ~name:"simplex >= grid search lower bound" ~count:60 arb
      (fun (c, a, b) ->
        let n = Array.length c in
        (* grid search over [0, 10]^n in steps of 0.5 *)
        let best = ref 0.0 in
        let steps = 21 in
        let rec enum point dim =
          if dim = n then begin
            let feasible =
              Array.for_all2
                (fun row bi ->
                  let lhs = ref 0.0 in
                  Array.iteri (fun j x -> lhs := !lhs +. (row.(j) *. x)) point;
                  !lhs <= bi +. 1e-9)
                a b
            in
            if feasible then begin
              let obj = ref 0.0 in
              Array.iteri (fun j x -> obj := !obj +. (c.(j) *. x)) point;
              if !obj > !best then best := !obj
            end
          end
          else
            for k = 0 to steps - 1 do
              point.(dim) <- 0.5 *. float_of_int k;
              enum point (dim + 1)
            done
        in
        enum (Array.make n 0.0) 0;
        match Simplex.solve ~c ~a ~b with
        | Simplex.Optimal { objective; solution } ->
            let feasible =
              Array.for_all2
                (fun row bi ->
                  let lhs = ref 0.0 in
                  Array.iteri (fun j x -> lhs := !lhs +. (row.(j) *. x)) solution;
                  !lhs <= bi +. 1e-6)
                a b
            in
            feasible && objective >= !best -. 1e-6
        | Simplex.Unbounded -> true (* grid can't certify unboundedness *)
        | Simplex.Infeasible -> false (* x = 0 is always feasible here *));
  ]

let suite =
  [
    Alcotest.test_case "basic max" `Quick test_basic_max;
    Alcotest.test_case "classic" `Quick test_classic;
    Alcotest.test_case "ge and eq rows" `Quick test_ge_and_eq;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "variable bounds" `Quick test_var_bounds;
    Alcotest.test_case "lb infeasible" `Quick test_lb_infeasible;
    Alcotest.test_case "placer rate LP shape" `Quick test_rate_lp_shape;
    Alcotest.test_case "degenerate no cycling" `Quick test_degenerate_cycling;
    Alcotest.test_case "mixed-scale regression" `Quick test_mixed_scale_regression;
    Alcotest.test_case "milp knapsack" `Quick test_milp_knapsack;
    Alcotest.test_case "milp integrality" `Quick test_milp_integrality;
    Alcotest.test_case "milp node limit" `Quick test_milp_node_limit;
    Alcotest.test_case "milp unbounded relaxation" `Quick
      test_milp_unbounded_relaxation;
    Alcotest.test_case "dantzig matches bland" `Quick test_dantzig_matches_bland;
    Alcotest.test_case "warm basis reuse" `Quick test_warm_basis_reuse;
    Alcotest.test_case "milp warm matches cold" `Quick test_milp_warm_matches_cold;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases
