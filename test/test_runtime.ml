(* Tests for the online control loop (lib/runtime): trace round-trips,
   policy parsing, and the engine's determinism / policy / oracle
   contracts. *)
module Trace = Lemur_runtime.Trace
module Policy = Lemur_runtime.Policy
module Engine = Lemur_runtime.Engine
module Report = Lemur_runtime.Report

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec scan i =
    if i + nh > lh then false
    else String.equal (String.sub hay i nh) needle || scan (i + 1)
  in
  nh = 0 || scan 0

let run_ok ?(policy = Policy.Immediate) ?check trace =
  let cfg = Engine.default_config ~policy ~seed:11 ?check () in
  match Engine.run cfg trace with
  | Ok (report, d) -> (report, d)
  | Error e -> Alcotest.failf "engine failed: %s" (Engine.error_to_string e)

(* A small handcrafted trace: two chains, one smartnic, a fail/recover
   pair, a traffic ramp, and one bad event the model must reject. *)
let hand_trace () =
  {
    Trace.seed = None;
    topo =
      {
        Trace.servers = 2;
        cores_per_socket = 8;
        smartnic = true;
        ofswitch = false;
        no_pisa = false;
        metron = false;
      };
    chains =
      [
        "c0 slo(tmin='1.0Gbps', tmax='100Gbps') = ACL -> NAT";
        "c1 slo(tmin='0.5Gbps', tmax='100Gbps') = Tunnel -> IPv4Fwd";
      ];
    windows = [];
    events =
      [
        { Trace.at = 0.010; action = Trace.Traffic { chain_id = "c0"; rate = 2e9 } };
        { Trace.at = 0.020; action = Trace.Fail Lemur.Failover.Smartnic_failed };
        { Trace.at = 0.030; action = Trace.Remove_chain "ghost" };
        { Trace.at = 0.040; action = Trace.Recover Lemur.Failover.Smartnic_failed };
      ];
    horizon = 0.050;
  }

let test_policy_parse () =
  let roundtrip s =
    match Policy.parse s with
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
    | Ok p -> Policy.name p
  in
  Alcotest.(check string) "immediate" "immediate" (roundtrip "immediate");
  Alcotest.(check string) "debounced" "debounced" (roundtrip "debounced");
  Alcotest.(check string) "scheduled" "scheduled" (roundtrip "scheduled");
  (match Policy.parse "debounced:50:10" with
  | Ok (Policy.Debounced { budget_s; cooldown_s }) ->
      Alcotest.(check (float 1e-9)) "budget ms" 0.050 budget_s;
      Alcotest.(check (float 1e-9)) "cooldown ms" 0.010 cooldown_s
  | Ok _ -> Alcotest.fail "expected debounced"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* to_string round-trips through parse *)
  List.iter
    (fun p ->
      match Policy.parse (Policy.to_string p) with
      | Ok p' ->
          Alcotest.(check string) "round-trip" (Policy.to_string p)
            (Policy.to_string p')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    [ Policy.Immediate; Policy.default_debounced; Policy.Scheduled ];
  match Policy.parse "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus policy must not parse"

let test_trace_roundtrip () =
  let t = Trace.generate ~events:20 ~seed:5 () in
  let text = Trace.to_string t in
  match Trace.parse text with
  | Error e -> Alcotest.failf "re-parse failed: %s" (Trace.parse_error_to_string e)
  | Ok t' ->
      Alcotest.(check string) "print/parse/print fixpoint" text
        (Trace.to_string t');
      Alcotest.(check int) "same event count" (List.length t.Trace.events)
        (List.length t'.Trace.events)

let test_trace_parse_errors () =
  (* an empty file parses structurally but declares no chains, which
     initial_inputs rejects — the engine maps that to Trace_invalid *)
  (match Trace.parse "" with
  | Error e ->
      Alcotest.failf "empty trace should parse structurally: %s"
        (Trace.parse_error_to_string e)
  | Ok t -> (
      match Trace.initial_inputs t with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "chainless trace must have no inputs"));
  match Trace.parse "@0.5 frobnicate x\n" with
  | Error e ->
      let rendered = Trace.parse_error_to_string e in
      Alcotest.(check bool) "error names the verb" true
        (contains ~needle:"frobnicate" rendered)
  | Ok _ -> Alcotest.fail "unknown verb must not parse"

let test_trace_parse_positions () =
  (* Errors carry 1-based file/line/column; the CLI prints them
     compiler-style with no backtrace. *)
  (match Trace.parse ~file:"t.trace" "chain c0 = ACL\n@0.5 frobnicate x\n" with
  | Error e ->
      Alcotest.(check (option string)) "file" (Some "t.trace") e.Trace.pe_file;
      Alcotest.(check int) "line" 2 e.Trace.pe_line;
      Alcotest.(check bool) "rendered as file:line:col" true
        (contains ~needle:"t.trace:2:" (Trace.parse_error_to_string e))
  | Ok _ -> Alcotest.fail "unknown verb must not parse");
  (* a bad key=value points at the offending token's column *)
  (match Trace.parse "chain c0 slo(bogus='1') = ACL\n" with
  | Error e ->
      Alcotest.(check int) "line 1" 1 e.Trace.pe_line;
      Alcotest.(check bool) "column past start" true (e.Trace.pe_col >= 1)
  | Ok _ -> ());
  (* default file placeholder when none was given *)
  match Trace.parse "@0.5 frobnicate x\n" with
  | Error e ->
      Alcotest.(check bool) "default file tag" true
        (contains ~needle:"<trace>" (Trace.parse_error_to_string e))
  | Ok _ -> Alcotest.fail "unknown verb must not parse"

let test_engine_survives_crashing_checker () =
  (* A check hook that raises mid-run must surface as a structured
     oracle rejection — the engine never lets the exception escape. *)
  let trace = Trace.generate ~events:12 ~seed:3 () in
  let calls = ref 0 in
  let check _ =
    incr calls;
    if !calls > 1 then failwith "checker bug" else Ok ()
  in
  let cfg =
    Engine.default_config ~policy:Policy.Immediate ~seed:3 ~check ()
  in
  match Engine.run cfg trace with
  | Error (Engine.Oracle_rejected { reason; _ }) ->
      Alcotest.(check bool) "reason names the hook crash" true
        (contains ~needle:"checker bug" reason)
  | Error e ->
      Alcotest.failf "wrong error class: %s" (Engine.error_to_string e)
  | Ok _ -> Alcotest.fail "second check call should have raised"
  | exception e ->
      Alcotest.failf "engine leaked the hook's exception: %s"
        (Printexc.to_string e)

let test_generator_deterministic () =
  let a = Trace.generate ~events:30 ~seed:7 () in
  let b = Trace.generate ~events:30 ~seed:7 () in
  Alcotest.(check string) "same seed, same trace" (Trace.to_string a)
    (Trace.to_string b);
  let c = Trace.generate ~events:30 ~seed:8 () in
  Alcotest.(check bool) "different seed, different trace" false
    (String.equal (Trace.to_string a) (Trace.to_string c))

let test_engine_deterministic () =
  let trace = Trace.generate ~events:12 ~seed:3 () in
  let r1, _ = run_ok trace in
  let r2, _ = run_ok trace in
  Alcotest.(check string) "equal report digests" (Report.digest r1)
    (Report.digest r2);
  Alcotest.(check int) "equal reconfig counts" r1.Report.reconfigs
    r2.Report.reconfigs

let test_policies_trade_reconfigs () =
  let trace = Trace.generate ~events:24 ~seed:3 () in
  let imm, _ = run_ok ~policy:Policy.Immediate trace in
  let deb, _ = run_ok ~policy:Policy.default_debounced trace in
  Alcotest.(check bool) "immediate reconfigures more" true
    (imm.Report.reconfigs > deb.Report.reconfigs);
  (* both saw the same stream *)
  Alcotest.(check int) "same events applied" imm.Report.events_applied
    deb.Report.events_applied

let test_engine_oracle_clean () =
  let trace = Trace.generate ~events:12 ~seed:3 () in
  let report, d = run_ok ~check:Lemur_check.Runtime_check.checker trace in
  Alcotest.(check bool) "at least one reconfig checked" true
    (report.Report.reconfigs > 0);
  match Lemur_check.Oracle.check_deployment d with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "final deployment must pass the oracle"

let test_fail_recover_and_rejects () =
  let report, d =
    run_ok ~check:Lemur_check.Runtime_check.checker (hand_trace ())
  in
  (match report.Report.stop with
  | Report.Completed -> ()
  | Report.Aborted { reason; _ } -> Alcotest.failf "aborted: %s" reason);
  Alcotest.(check int) "ghost removal rejected" 1 report.Report.events_rejected;
  Alcotest.(check int) "other three applied" 3 report.Report.events_applied;
  (* recovery restored the smartnic *)
  Alcotest.(check bool) "smartnic back in the rack" true
    (d.Lemur.Deployment.config.Lemur_placer.Plan.topology
       .Lemur_topology.Topology.smartnics
    <> [])

let test_scheduled_defers () =
  let trace = Trace.generate ~events:24 ~seed:3 () in
  let sch, _ = run_ok ~policy:Policy.Scheduled trace in
  let imm, _ = run_ok ~policy:Policy.Immediate trace in
  Alcotest.(check bool) "scheduled reconfigures less than immediate" true
    (sch.Report.reconfigs < imm.Report.reconfigs);
  Alcotest.(check bool) "deferred events journaled" true
    (List.exists
       (function Report.Deferred _ -> true | _ -> false)
       sch.Report.journal)

let test_incremental_digest_parity () =
  (* The incremental engine keeps the placer's structural memo and
     variant cache warm across re-placements; from-scratch drops them
     inside every decision. Verdicts — and so report digests — must be
     byte-identical: the caches may only move decision latency. *)
  let trace = Trace.generate ~events:24 ~seed:3 () in
  let drive incremental =
    Lemur_placer.Memo.clear ();
    Lemur_placer.Strategy.clear_variant_cache ();
    let cfg =
      Engine.default_config ~seed:3 ~check:Lemur_check.Runtime_check.checker
        ~incremental ()
    in
    match Engine.run cfg trace with
    | Ok (report, _) -> Report.digest report
    | Error e -> Alcotest.failf "engine failed: %s" (Engine.error_to_string e)
  in
  Alcotest.(check string) "incremental digest equals from-scratch"
    (drive false) (drive true)

let test_report_json_shape () =
  let trace = Trace.generate ~events:12 ~seed:3 () in
  let report, _ = run_ok trace in
  let json = Lemur_telemetry.Json.to_string (Report.to_json report) in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true
        (contains ~needle:("\"" ^ key ^ "\"") json))
    [
      "schema"; "policy"; "reconfigs"; "chains"; "total_violation_s";
      "journal"; "stop";
    ]

let suite =
  [
    Alcotest.test_case "policy parse" `Quick test_policy_parse;
    Alcotest.test_case "trace text round-trip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace parse errors" `Quick test_trace_parse_errors;
    Alcotest.test_case "trace parse error positions" `Quick
      test_trace_parse_positions;
    Alcotest.test_case "crashing check hook is contained" `Quick
      test_engine_survives_crashing_checker;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "engine is deterministic" `Quick
      test_engine_deterministic;
    Alcotest.test_case "debounce trades reconfigs" `Quick
      test_policies_trade_reconfigs;
    Alcotest.test_case "engine passes the oracle" `Quick
      test_engine_oracle_clean;
    Alcotest.test_case "fail/recover and rejected events" `Quick
      test_fail_recover_and_rejects;
    Alcotest.test_case "scheduled policy defers" `Quick test_scheduled_defers;
    Alcotest.test_case "incremental matches from-scratch" `Quick
      test_incremental_digest_parity;
    Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
  ]
