(* Tests for the online control loop (lib/runtime): trace round-trips,
   policy parsing, forecasting, the move budget, and the engine's
   determinism / policy / oracle contracts. *)
module Trace = Lemur_runtime.Trace
module Policy = Lemur_runtime.Policy
module Engine = Lemur_runtime.Engine
module Report = Lemur_runtime.Report
module Forecast = Lemur_runtime.Forecast
module Monitor = Lemur_runtime.Monitor

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec scan i =
    if i + nh > lh then false
    else String.equal (String.sub hay i nh) needle || scan (i + 1)
  in
  nh = 0 || scan 0

let run_ok ?(policy = Policy.Immediate) ?check trace =
  let cfg = Engine.default_config ~policy ~seed:11 ?check () in
  match Engine.run cfg trace with
  | Ok (report, d) -> (report, d)
  | Error e -> Alcotest.failf "engine failed: %s" (Engine.error_to_string e)

(* A small handcrafted trace: two chains, one smartnic, a fail/recover
   pair, a traffic ramp, and one bad event the model must reject. *)
let hand_trace () =
  {
    Trace.seed = None;
    topo =
      {
        Trace.servers = 2;
        cores_per_socket = 8;
        smartnic = true;
        ofswitch = false;
        no_pisa = false;
        metron = false;
      };
    chains =
      [
        "c0 slo(tmin='1.0Gbps', tmax='100Gbps') = ACL -> NAT";
        "c1 slo(tmin='0.5Gbps', tmax='100Gbps') = Tunnel -> IPv4Fwd";
      ];
    windows = [];
    events =
      [
        { Trace.at = 0.010; action = Trace.Traffic { chain_id = "c0"; rate = 2e9 } };
        { Trace.at = 0.020; action = Trace.Fail Lemur.Failover.Smartnic_failed };
        { Trace.at = 0.030; action = Trace.Remove_chain "ghost" };
        { Trace.at = 0.040; action = Trace.Recover Lemur.Failover.Smartnic_failed };
      ];
    horizon = 0.050;
  }

let test_policy_parse () =
  let roundtrip s =
    match Policy.parse s with
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
    | Ok p -> Policy.name p
  in
  Alcotest.(check string) "immediate" "immediate" (roundtrip "immediate");
  Alcotest.(check string) "debounced" "debounced" (roundtrip "debounced");
  Alcotest.(check string) "scheduled" "scheduled" (roundtrip "scheduled");
  (match Policy.parse "debounced:50:10" with
  | Ok (Policy.Debounced { budget_s; cooldown_s }) ->
      Alcotest.(check (float 1e-9)) "budget ms" 0.050 budget_s;
      Alcotest.(check (float 1e-9)) "cooldown ms" 0.010 cooldown_s
  | Ok _ -> Alcotest.fail "expected debounced"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* to_string round-trips through parse *)
  List.iter
    (fun p ->
      match Policy.parse (Policy.to_string p) with
      | Ok p' ->
          Alcotest.(check string) "round-trip" (Policy.to_string p)
            (Policy.to_string p')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    [ Policy.Immediate; Policy.default_debounced; Policy.Scheduled ];
  match Policy.parse "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus policy must not parse"

let test_policy_parse_strict () =
  (* A trailing or doubled ':' is an empty component: rejected with the
     1-based column of the offending position, never silently
     defaulted. *)
  List.iter
    (fun (s, col) ->
      match Policy.parse s with
      | Ok p ->
          Alcotest.failf "%S must not parse (got %s)" s (Policy.to_string p)
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "%S error names column %d" s col)
            true
            (contains ~needle:(Printf.sprintf "column %d" col) e))
    [
      ("debounced:10:", 14);
      ("debounced::20", 11);
      (":immediate", 1);
      ("proactive:20:", 14);
      ("proactive:20:holt:0.5:", 23);
    ];
  (* the proactive parameterised forms *)
  (match Policy.parse "proactive:40:ewma:0.25" with
  | Ok (Policy.Proactive { horizon_s; model = Forecast.Ewma { alpha }; _ }) ->
      Alcotest.(check (float 1e-12)) "horizon" 0.040 horizon_s;
      Alcotest.(check (float 0.0)) "alpha" 0.25 alpha
  | Ok p -> Alcotest.failf "wrong shape: %s" (Policy.to_string p)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Policy.parse "proactive:20:holt:0.5:0.3:0.2" with
  | Ok (Policy.Proactive { headroom; _ }) ->
      Alcotest.(check (float 0.0)) "headroom" 0.2 headroom
  | Ok p -> Alcotest.failf "wrong shape: %s" (Policy.to_string p)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_debounce_decay () =
  (* The accumulator decays with a 0.2 s half-life: violation noted at
     t=0 is nearly gone two seconds later, so a gap-heavy trace never
     crosses the budget that the same violations packed densely would
     cross immediately. *)
  let policy = Policy.Debounced { budget_s = 0.03; cooldown_s = 0.0 } in
  let dense = Policy.initial_state () in
  Policy.note_violation dense ~now:0.0 0.05;
  Alcotest.(check bool) "dense violations trip the budget" true
    (Policy.decide policy dense ~now:0.005 Policy.Violations);
  let stale = Policy.initial_state () in
  Policy.note_violation stale ~now:0.0 0.05;
  Alcotest.(check bool) "stale violations decayed away" false
    (Policy.decide policy stale ~now:2.0 Policy.Violations);
  (* the same 0.05 total spread over 10 s of gaps never accumulates *)
  let sparse = Policy.initial_state () in
  for i = 0 to 4 do
    Policy.note_violation sparse ~now:(float_of_int i *. 2.0) 0.01
  done;
  Alcotest.(check bool) "gap-heavy trace stays under budget" false
    (Policy.decide policy sparse ~now:8.005 Policy.Violations)

let test_monitor_starved_chain () =
  (* A chain that delivered no batches at all is the worst latency
     case, not a healthy one: with a finite d_max and offered traffic
     it must be latency-violated even though no p99 sample exists. *)
  let thr, lat, _ =
    Monitor.classify ~offered:1e9 ~delivered:0.0 ~p99_latency:0.0
      ~batches_delivered:0 ~t_min:2e9 ~d_max:0.001
  in
  Alcotest.(check bool) "starved chain is throughput-violated" true thr;
  Alcotest.(check bool) "starved chain is latency-violated" true lat;
  (* no latency SLO -> nothing to violate *)
  let _, lat_free, _ =
    Monitor.classify ~offered:1e9 ~delivered:0.0 ~p99_latency:0.0
      ~batches_delivered:0 ~t_min:2e9 ~d_max:infinity
  in
  Alcotest.(check bool) "no d_max, no latency violation" false lat_free;
  (* idle chain: no offered traffic means nothing was starved *)
  let _, lat_idle, _ =
    Monitor.classify ~offered:0.0 ~delivered:0.0 ~p99_latency:0.0
      ~batches_delivered:0 ~t_min:2e9 ~d_max:0.001
  in
  Alcotest.(check bool) "idle chain not latency-violated" false lat_idle

let test_monitor_marginal_capped () =
  (* Marginal throughput is credited against min(offered, t_min): a
     chain offered less than its floor is not in deficit for traffic
     that never arrived, and delivery above the offered load counts as
     margin. *)
  let thr, _, marginal =
    Monitor.classify ~offered:1e9 ~delivered:1.5e9 ~p99_latency:0.0
      ~batches_delivered:10 ~t_min:2e9 ~d_max:infinity
  in
  Alcotest.(check bool) "not throughput-violated below offered floor" false
    thr;
  Alcotest.(check (float 1.0)) "marginal over the offered-capped target"
    0.5e9 marginal;
  let _, _, marginal_sat =
    Monitor.classify ~offered:3e9 ~delivered:2.5e9 ~p99_latency:0.0
      ~batches_delivered:10 ~t_min:2e9 ~d_max:infinity
  in
  Alcotest.(check (float 1.0)) "t_min caps the target when offered exceeds"
    0.5e9 marginal_sat

let test_forecast_models () =
  (* EWMA converges to a constant signal and forecasts flat. *)
  let ewma = Forecast.create (Forecast.Ewma { alpha = 0.5 }) in
  for i = 0 to 19 do
    Forecast.observe ewma ~at:(float_of_int i *. 0.01) 5e9
  done;
  Alcotest.(check bool) "ewma converges to the level" true
    (Float.abs (Forecast.predict ewma ~horizon_s:0.05 -. 5e9) < 1e6);
  (* Holt-Winters extrapolates a ramp beyond the last sample. *)
  let holt = Forecast.create (Forecast.Holt_winters { alpha = 0.5; beta = 0.3 }) in
  for i = 0 to 19 do
    (* 1 Gbps per 10 ms = 100 Gbps/s slope *)
    Forecast.observe holt ~at:(float_of_int i *. 0.01)
      (1e9 +. (float_of_int i *. 1e9))
  done;
  let last = 20e9 in
  Alcotest.(check bool) "holt extrapolates above the last sample" true
    (Forecast.predict holt ~horizon_s:0.02 > last);
  (* the flat model lags the same ramp *)
  let ewma_ramp = Forecast.create (Forecast.Ewma { alpha = 0.5 }) in
  for i = 0 to 19 do
    Forecast.observe ewma_ramp ~at:(float_of_int i *. 0.01)
      (1e9 +. (float_of_int i *. 1e9))
  done;
  Alcotest.(check bool) "trend model beats flat model on a ramp" true
    (Forecast.mean_abs_error holt < Forecast.mean_abs_error ewma_ramp);
  (* predictions never go negative *)
  let falling = Forecast.create (Forecast.Holt_winters { alpha = 1.0; beta = 1.0 }) in
  Forecast.observe falling ~at:0.0 2e9;
  Forecast.observe falling ~at:0.01 1e8;
  Alcotest.(check bool) "clamped nonnegative" true
    (Forecast.predict falling ~horizon_s:1.0 >= 0.0)

let test_generator_kinds () =
  (* Every generator family is deterministic per seed and a fixed point
     of the text round-trip, floats bit-exact. *)
  List.iter
    (fun kind ->
      let name = Trace.kind_to_string kind in
      let a = Trace.generate ~events:25 ~kind ~seed:9 () in
      let b = Trace.generate ~events:25 ~kind ~seed:9 () in
      Alcotest.(check string)
        (name ^ ": same seed, same trace")
        (Trace.to_string a) (Trace.to_string b);
      let text = Trace.to_string a in
      (match Trace.parse text with
      | Error e ->
          Alcotest.failf "%s: re-parse failed: %s" name
            (Trace.parse_error_to_string e)
      | Ok a' ->
          Alcotest.(check string)
            (name ^ ": print/parse/print fixpoint")
            text (Trace.to_string a');
          List.iter2
            (fun (e : Trace.event) (e' : Trace.event) ->
              Alcotest.(check bool)
                (name ^ ": event round-trips bit-exactly")
                true
                (Float.equal e.Trace.at e'.Trace.at
                && e.Trace.action = e'.Trace.action))
            a.Trace.events a'.Trace.events);
      (match Trace.kind_of_string name with
      | Ok k -> Alcotest.(check bool) (name ^ " name round-trip") true (k = kind)
      | Error e -> Alcotest.failf "kind_of_string %s: %s" name e))
    Trace.all_kinds

let test_shrink_terminates () =
  (* shrink_events must terminate on every generator family and return
     the greedy fixpoint of its predicate. *)
  List.iter
    (fun kind ->
      let trace = Trace.generate ~events:20 ~kind ~seed:4 () in
      let fails t = List.length t.Trace.events >= 5 in
      let shrunk = Lemur_check.Runtime_check.shrink_events ~fails trace in
      Alcotest.(check int)
        (Trace.kind_to_string kind ^ ": shrunk to the minimal failing size")
        5
        (List.length shrunk.Trace.events);
      Alcotest.(check bool) "still fails" true (fails shrunk))
    Trace.all_kinds

let test_proactive_engine () =
  (* On a flash-crowd trace the forecast alarm fires: the proactive
     policy reconfigures on predicted breaches (journaled as
     "forecast"), far less often than immediate, and reports per-chain
     forecast error. *)
  let trace = Trace.generate ~events:50 ~kind:Trace.Flash_crowd ~seed:2 () in
  let pro, _ = run_ok ~policy:Policy.default_proactive trace in
  let imm, _ = run_ok ~policy:Policy.Immediate trace in
  Alcotest.(check bool) "forecast trigger fired" true
    (List.exists
       (function
         | Report.Reconfigured { reason; _ } -> contains ~needle:"forecast" reason
         | _ -> false)
       pro.Report.journal);
  Alcotest.(check bool) "at most half of immediate's reconfigs" true
    (2 * pro.Report.reconfigs <= imm.Report.reconfigs);
  Alcotest.(check bool) "forecast error reported per chain" true
    (pro.Report.forecast_mae <> []
    && List.for_all (fun (_, mae) -> mae >= 0.0) pro.Report.forecast_mae);
  (* deterministic under the forecasting path too *)
  let pro2, _ = run_ok ~policy:Policy.default_proactive trace in
  Alcotest.(check string) "proactive digest stable" (Report.digest pro)
    (Report.digest pro2)

let test_move_budget () =
  (* Under a budget of 0 every non-exempt reconfiguration must re-home
     zero chains; the capped path actually fires on a failure-burst
     trace (recoveries want to move chains back), and mandatory
     reconfigurations stay exempt. *)
  let trace = Trace.generate ~events:50 ~kind:Trace.Failure_burst ~seed:2 () in
  let drive budget =
    let cfg =
      Engine.default_config ~policy:Policy.Immediate ~seed:11
        ~check:Lemur_check.Runtime_check.checker ?move_budget:budget ()
    in
    match Engine.run cfg trace with
    | Ok (report, _) -> report
    | Error e -> Alcotest.failf "engine failed: %s" (Engine.error_to_string e)
  in
  let capped = drive (Some 0) in
  Alcotest.(check bool) "capped path exercised" true
    (capped.Report.moves_capped > 0);
  Alcotest.(check int) "no non-exempt moves under budget 0" 0
    capped.Report.moves_total;
  List.iter
    (function
      | Report.Reconfigured { moves; exempt = false; _ } ->
          Alcotest.(check int) "journal entry respects the budget" 0 moves
      | _ -> ())
    capped.Report.journal;
  (* failures still re-home chains: the budget never blocks mandatory
     reconfigurations *)
  Alcotest.(check bool) "exempt reconfigurations still move chains" true
    (List.exists
       (function
         | Report.Reconfigured { moves; exempt = true; _ } -> moves > 0
         | _ -> false)
       capped.Report.journal);
  (* digest-deterministic *)
  let capped2 = drive (Some 0) in
  Alcotest.(check string) "budgeted digest stable" (Report.digest capped)
    (Report.digest capped2);
  (* an unbudgeted run on the same trace does move chains *)
  let free = drive None in
  Alcotest.(check bool) "unbudgeted run re-homes chains" true
    (free.Report.moves_total > 0);
  Alcotest.(check int) "nothing capped without a budget" 0
    free.Report.moves_capped

let qcheck_cases =
  let open QCheck in
  let duration_gen =
    Gen.oneof
      [
        Gen.map (fun i -> float_of_int i /. 1000.0) (Gen.int_range 1 100_000);
        Gen.map (fun i -> float_of_int i /. 7000.0) (Gen.int_range 1 100_000);
        Gen.map (fun f -> Float.abs f +. 1e-6) Gen.pfloat;
      ]
  in
  let weight_gen =
    Gen.map (fun i -> float_of_int i /. 1_000_000.0) (Gen.int_range 1 1_000_000)
  in
  let headroom_gen =
    Gen.map (fun i -> float_of_int i /. 300.0) (Gen.int_range 0 900)
  in
  let model_gen =
    Gen.oneof
      [
        Gen.map (fun a -> Forecast.Ewma { alpha = a }) weight_gen;
        Gen.map2
          (fun a b -> Forecast.Holt_winters { alpha = a; beta = b })
          weight_gen weight_gen;
      ]
  in
  let policy_gen =
    Gen.oneof
      [
        Gen.return Policy.Immediate;
        Gen.return Policy.Scheduled;
        Gen.map2
          (fun b c -> Policy.Debounced { budget_s = b; cooldown_s = c })
          duration_gen duration_gen;
        Gen.map3
          (fun h m hd ->
            Policy.Proactive { horizon_s = h; model = m; headroom = hd })
          duration_gen model_gen headroom_gen;
      ]
  in
  let policy_arb = make ~print:Policy.to_string policy_gen in
  [
    Test.make ~name:"policy parse inverts to_string" ~count:500 policy_arb
      (fun p ->
        match Policy.parse (Policy.to_string p) with
        | Ok p' -> p = p'
        | Error _ -> false);
  ]

let test_trace_roundtrip () =
  let t = Trace.generate ~events:20 ~seed:5 () in
  let text = Trace.to_string t in
  match Trace.parse text with
  | Error e -> Alcotest.failf "re-parse failed: %s" (Trace.parse_error_to_string e)
  | Ok t' ->
      Alcotest.(check string) "print/parse/print fixpoint" text
        (Trace.to_string t');
      Alcotest.(check int) "same event count" (List.length t.Trace.events)
        (List.length t'.Trace.events)

let test_trace_parse_errors () =
  (* an empty file parses structurally but declares no chains, which
     initial_inputs rejects — the engine maps that to Trace_invalid *)
  (match Trace.parse "" with
  | Error e ->
      Alcotest.failf "empty trace should parse structurally: %s"
        (Trace.parse_error_to_string e)
  | Ok t -> (
      match Trace.initial_inputs t with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "chainless trace must have no inputs"));
  match Trace.parse "@0.5 frobnicate x\n" with
  | Error e ->
      let rendered = Trace.parse_error_to_string e in
      Alcotest.(check bool) "error names the verb" true
        (contains ~needle:"frobnicate" rendered)
  | Ok _ -> Alcotest.fail "unknown verb must not parse"

let test_trace_parse_positions () =
  (* Errors carry 1-based file/line/column; the CLI prints them
     compiler-style with no backtrace. *)
  (match Trace.parse ~file:"t.trace" "chain c0 = ACL\n@0.5 frobnicate x\n" with
  | Error e ->
      Alcotest.(check (option string)) "file" (Some "t.trace") e.Trace.pe_file;
      Alcotest.(check int) "line" 2 e.Trace.pe_line;
      Alcotest.(check bool) "rendered as file:line:col" true
        (contains ~needle:"t.trace:2:" (Trace.parse_error_to_string e))
  | Ok _ -> Alcotest.fail "unknown verb must not parse");
  (* a bad key=value points at the offending token's column *)
  (match Trace.parse "chain c0 slo(bogus='1') = ACL\n" with
  | Error e ->
      Alcotest.(check int) "line 1" 1 e.Trace.pe_line;
      Alcotest.(check bool) "column past start" true (e.Trace.pe_col >= 1)
  | Ok _ -> ());
  (* default file placeholder when none was given *)
  match Trace.parse "@0.5 frobnicate x\n" with
  | Error e ->
      Alcotest.(check bool) "default file tag" true
        (contains ~needle:"<trace>" (Trace.parse_error_to_string e))
  | Ok _ -> Alcotest.fail "unknown verb must not parse"

let test_engine_survives_crashing_checker () =
  (* A check hook that raises mid-run must surface as a structured
     oracle rejection — the engine never lets the exception escape. *)
  let trace = Trace.generate ~events:12 ~seed:3 () in
  let calls = ref 0 in
  let check _ =
    incr calls;
    if !calls > 1 then failwith "checker bug" else Ok ()
  in
  let cfg =
    Engine.default_config ~policy:Policy.Immediate ~seed:3 ~check ()
  in
  match Engine.run cfg trace with
  | Error (Engine.Oracle_rejected { reason; _ }) ->
      Alcotest.(check bool) "reason names the hook crash" true
        (contains ~needle:"checker bug" reason)
  | Error e ->
      Alcotest.failf "wrong error class: %s" (Engine.error_to_string e)
  | Ok _ -> Alcotest.fail "second check call should have raised"
  | exception e ->
      Alcotest.failf "engine leaked the hook's exception: %s"
        (Printexc.to_string e)

let test_generator_deterministic () =
  let a = Trace.generate ~events:30 ~seed:7 () in
  let b = Trace.generate ~events:30 ~seed:7 () in
  Alcotest.(check string) "same seed, same trace" (Trace.to_string a)
    (Trace.to_string b);
  let c = Trace.generate ~events:30 ~seed:8 () in
  Alcotest.(check bool) "different seed, different trace" false
    (String.equal (Trace.to_string a) (Trace.to_string c))

let test_engine_deterministic () =
  let trace = Trace.generate ~events:12 ~seed:3 () in
  let r1, _ = run_ok trace in
  let r2, _ = run_ok trace in
  Alcotest.(check string) "equal report digests" (Report.digest r1)
    (Report.digest r2);
  Alcotest.(check int) "equal reconfig counts" r1.Report.reconfigs
    r2.Report.reconfigs

let test_policies_trade_reconfigs () =
  let trace = Trace.generate ~events:24 ~seed:3 () in
  let imm, _ = run_ok ~policy:Policy.Immediate trace in
  let deb, _ = run_ok ~policy:Policy.default_debounced trace in
  Alcotest.(check bool) "immediate reconfigures more" true
    (imm.Report.reconfigs > deb.Report.reconfigs);
  (* both saw the same stream *)
  Alcotest.(check int) "same events applied" imm.Report.events_applied
    deb.Report.events_applied

let test_engine_oracle_clean () =
  let trace = Trace.generate ~events:12 ~seed:3 () in
  let report, d = run_ok ~check:Lemur_check.Runtime_check.checker trace in
  Alcotest.(check bool) "at least one reconfig checked" true
    (report.Report.reconfigs > 0);
  match Lemur_check.Oracle.check_deployment d with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "final deployment must pass the oracle"

let test_fail_recover_and_rejects () =
  let report, d =
    run_ok ~check:Lemur_check.Runtime_check.checker (hand_trace ())
  in
  (match report.Report.stop with
  | Report.Completed -> ()
  | Report.Aborted { reason; _ } -> Alcotest.failf "aborted: %s" reason);
  Alcotest.(check int) "ghost removal rejected" 1 report.Report.events_rejected;
  Alcotest.(check int) "other three applied" 3 report.Report.events_applied;
  (* recovery restored the smartnic *)
  Alcotest.(check bool) "smartnic back in the rack" true
    (d.Lemur.Deployment.config.Lemur_placer.Plan.topology
       .Lemur_topology.Topology.smartnics
    <> [])

let test_scheduled_defers () =
  let trace = Trace.generate ~events:24 ~seed:3 () in
  let sch, _ = run_ok ~policy:Policy.Scheduled trace in
  let imm, _ = run_ok ~policy:Policy.Immediate trace in
  Alcotest.(check bool) "scheduled reconfigures less than immediate" true
    (sch.Report.reconfigs < imm.Report.reconfigs);
  Alcotest.(check bool) "deferred events journaled" true
    (List.exists
       (function Report.Deferred _ -> true | _ -> false)
       sch.Report.journal)

let test_incremental_digest_parity () =
  (* The incremental engine keeps the placer's structural memo and
     variant cache warm across re-placements; from-scratch drops them
     inside every decision. Verdicts — and so report digests — must be
     byte-identical: the caches may only move decision latency. *)
  let trace = Trace.generate ~events:24 ~seed:3 () in
  let drive incremental =
    Lemur_placer.Memo.clear ();
    Lemur_placer.Strategy.clear_variant_cache ();
    let cfg =
      Engine.default_config ~seed:3 ~check:Lemur_check.Runtime_check.checker
        ~incremental ()
    in
    match Engine.run cfg trace with
    | Ok (report, _) -> Report.digest report
    | Error e -> Alcotest.failf "engine failed: %s" (Engine.error_to_string e)
  in
  Alcotest.(check string) "incremental digest equals from-scratch"
    (drive false) (drive true)

let test_report_json_shape () =
  let trace = Trace.generate ~events:12 ~seed:3 () in
  let report, _ = run_ok trace in
  let json = Lemur_telemetry.Json.to_string (Report.to_json report) in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true
        (contains ~needle:("\"" ^ key ^ "\"") json))
    [
      "schema"; "policy"; "reconfigs"; "chains"; "total_violation_s";
      "journal"; "stop";
    ]

let suite =
  [
    Alcotest.test_case "policy parse" `Quick test_policy_parse;
    Alcotest.test_case "trace text round-trip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace parse errors" `Quick test_trace_parse_errors;
    Alcotest.test_case "trace parse error positions" `Quick
      test_trace_parse_positions;
    Alcotest.test_case "crashing check hook is contained" `Quick
      test_engine_survives_crashing_checker;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "engine is deterministic" `Quick
      test_engine_deterministic;
    Alcotest.test_case "debounce trades reconfigs" `Quick
      test_policies_trade_reconfigs;
    Alcotest.test_case "engine passes the oracle" `Quick
      test_engine_oracle_clean;
    Alcotest.test_case "fail/recover and rejected events" `Quick
      test_fail_recover_and_rejects;
    Alcotest.test_case "scheduled policy defers" `Quick test_scheduled_defers;
    Alcotest.test_case "incremental matches from-scratch" `Quick
      test_incremental_digest_parity;
    Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
    Alcotest.test_case "policy parse rejects empty components" `Quick
      test_policy_parse_strict;
    Alcotest.test_case "debounce accumulator decays" `Quick
      test_debounce_decay;
    Alcotest.test_case "starved chain is latency-violated" `Quick
      test_monitor_starved_chain;
    Alcotest.test_case "marginal capped at offered" `Quick
      test_monitor_marginal_capped;
    Alcotest.test_case "forecast models" `Quick test_forecast_models;
    Alcotest.test_case "generator kinds round-trip" `Quick
      test_generator_kinds;
    Alcotest.test_case "shrinking terminates on all kinds" `Quick
      test_shrink_terminates;
    Alcotest.test_case "proactive forecasting engine" `Quick
      test_proactive_engine;
    Alcotest.test_case "move budget caps re-homing" `Quick test_move_budget;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases
